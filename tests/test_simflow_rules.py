"""simflow rule tests: good + bad fixtures per FLOW rule, annotations,
per-line suppressions, the v4 JSON schema (golden file) and baselines."""

from __future__ import annotations

import json
import os
import pathlib
import textwrap

import pytest

from repro.check import (
    FLOW_RULES,
    IP_RULES,
    RACE_RULES,
    Baseline,
    apply_baseline,
    findings_to_json,
    lint_project,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.check.engine import LintResult
from repro.check.reporting import JSON_SCHEMA_VERSION

GOLDEN = pathlib.Path(__file__).parent / "data" / "simlint_schema_v4.golden.json"


def lint(source: str, module: str, rules: list[str] | None = None):
    return lint_source(textwrap.dedent(source), module=module, rule_ids=rules)


def rule_ids(findings) -> list[str]:
    return [finding.rule_id for finding in findings]


# ----------------------------------------------------------------------
# FLOW001 — S ⊕ F discipline
# ----------------------------------------------------------------------
class TestFlow001Discipline:
    BAD_MAP_SHARED_ACCESSIBLE = """
        def merge(self, kernel, process, vaddr, pfn):
            self.tracker.pin_fused(pfn)
            kernel.map_page(process, vaddr, pfn, PteFlags.USER | PteFlags.WRITABLE)
            self.stats.merges += 1
    """
    BAD_PIN_WHILE_ACCESSIBLE = """
        def fake_merge(self, kernel, process, vaddr, content):
            new_pfn = self.pool.alloc(owner="fusion")
            kernel.physmem.write(new_pfn, content)
            kernel.map_page(process, vaddr, new_pfn, PteFlags.USER | PteFlags.WRITABLE)
            self.tracker.pin_fused(new_pfn)
            self.stats.merges += 1
    """
    BAD_ONE_BRANCH = """
        def merge(self, kernel, process, vaddr, pfn, fast):
            self.tracker.pin_fused(pfn)
            if fast:
                kernel.map_page(process, vaddr, pfn, PteFlags.USER | PteFlags.PRESENT)
            else:
                kernel.map_page(process, vaddr, pfn, self._fused_flags)
            self.stats.merges += 1
    """
    GOOD_FUSED_PATH = """
        def merge(self, kernel, process, vaddr, pfn):
            self.tracker.pin_fused(pfn)
            kernel.map_page(process, vaddr, pfn, self._fused_flags)
            self.stats.merges += 1
    """
    GOOD_COPY_ON_ACCESS = """
        def copy_on_access(self, kernel, process, vaddr, node_pfn):
            new_pfn = kernel.buddy.alloc()
            kernel.physmem.copy_page_cached(node_pfn, new_pfn)
            kernel.map_page(process, vaddr, new_pfn, PteFlags.USER | PteFlags.WRITABLE)
            self.stats.breaks += 1
    """
    GOOD_STABLE_NODE_FUSED = """
        def promote(self, kernel, process, vaddr, node):
            kernel.map_page(process, vaddr, node.pfn, FUSED_FLAGS_NO_CD)
            self.stats.merges += 1
    """
    BAD_STABLE_NODE_ACCESSIBLE = """
        def promote(self, kernel, process, vaddr, node):
            kernel.map_page(process, vaddr, node.pfn, PteFlags.USER | PteFlags.WRITABLE)
            self.stats.merges += 1
    """

    def test_map_shared_accessible_flagged(self):
        assert rule_ids(lint(
            self.BAD_MAP_SHARED_ACCESSIBLE, "repro.core.vusion"
        )) == ["FLOW001"]

    def test_pin_while_accessible_flagged(self):
        assert rule_ids(lint(
            self.BAD_PIN_WHILE_ACCESSIBLE, "repro.fusion.ksm"
        )) == ["FLOW001"]

    def test_single_bad_branch_flagged(self):
        findings = lint(self.BAD_ONE_BRANCH, "repro.core.vusion")
        assert rule_ids(findings) == ["FLOW001"]

    def test_fused_path_clean(self):
        assert lint(self.GOOD_FUSED_PATH, "repro.core.vusion") == []

    def test_copy_on_access_clean(self):
        assert lint(self.GOOD_COPY_ON_ACCESS, "repro.core.vusion") == []

    def test_stable_node_fused_clean(self):
        assert lint(self.GOOD_STABLE_NODE_FUSED, "repro.fusion.ksm") == []

    def test_stable_node_accessible_flagged(self):
        assert rule_ids(lint(
            self.BAD_STABLE_NODE_ACCESSIBLE, "repro.fusion.ksm"
        )) == ["FLOW001"]

    def test_out_of_scope_module_ignored(self):
        assert lint(self.BAD_MAP_SHARED_ACCESSIBLE, "repro.workloads.base") == []


# ----------------------------------------------------------------------
# FLOW002 — charge/ledger exception safety
# ----------------------------------------------------------------------
class TestFlow002LedgerSafety:
    BAD_EARLY_RETURN = """
        def merge(self, kernel, process, vaddr, pfn, refcount):
            kernel.map_page(process, vaddr, pfn, self._fused_flags)
            if refcount:
                return
            self.stats.merges += 1
    """
    BAD_SWALLOWED_EXCEPTION = """
        def unmerge(self, kernel, process, vaddr):
            kernel.unmap_page(process, vaddr)
            try:
                risky()
            except ValueError:
                return
            self.stats.unmerges += 1
    """
    GOOD_CHARGE_ALL_PATHS = """
        def merge(self, kernel, process, vaddr, pfn, refcount):
            kernel.map_page(process, vaddr, pfn, self._fused_flags)
            if refcount:
                self.kernel.emit("fusion:merge", pfn=pfn)
                return
            self.stats.merges += 1
    """
    GOOD_CHARGE_IN_FINALLY = """
        def unmerge(self, kernel, process, vaddr):
            try:
                kernel.unmap_page(process, vaddr)
                risky()
            finally:
                self.clock.advance(1)
    """
    GOOD_RAISE_EXEMPT = """
        def rerandomize(self, kernel, process, vaddr, pfn, refcount):
            kernel.map_page(process, vaddr, pfn, self._fused_flags)
            if refcount:
                raise RuntimeError("refcount corrupt")
            self.stats.rerandomizations += 1
    """

    def test_early_return_flagged(self):
        assert rule_ids(lint(
            self.BAD_EARLY_RETURN, "repro.core.vusion"
        )) == ["FLOW002"]

    def test_swallowed_exception_flagged(self):
        assert rule_ids(lint(
            self.BAD_SWALLOWED_EXCEPTION, "repro.fusion.ksm"
        )) == ["FLOW002"]

    def test_charge_on_every_path_clean(self):
        assert lint(self.GOOD_CHARGE_ALL_PATHS, "repro.core.vusion") == []

    def test_charge_in_finally_clean(self):
        assert lint(self.GOOD_CHARGE_IN_FINALLY, "repro.fusion.ksm") == []

    def test_explicit_raise_exempt(self):
        assert lint(self.GOOD_RAISE_EXEMPT, "repro.core.vusion") == []

    def test_out_of_scope_module_ignored(self):
        # The kernel facade maps pages without owning ledger charges.
        assert lint(self.BAD_EARLY_RETURN, "repro.kernel.core") == []


# ----------------------------------------------------------------------
# FLOW003 — frame-handle escape/leak
# ----------------------------------------------------------------------
class TestFlow003FrameLeak:
    BAD_LEAK_ON_BRANCH = """
        def grab(self, kernel, order):
            pfn = kernel.buddy.alloc(order)
            if order > 3:
                return None
            kernel.map_page(1, 2, pfn, FUSED_FLAGS)
            self.stats.merges += 1
    """
    BAD_DISCARDED_RESULT = """
        def grab(self, buddy):
            buddy.alloc()
    """
    BAD_OVERWRITTEN = """
        def grab(self, buddy):
            pfn = buddy.alloc()
            pfn = buddy.alloc()
            return pfn
    """
    GOOD_RETURNED = """
        def grab(self, buddy):
            pfn = buddy.alloc()
            return pfn
    """
    GOOD_STORED = """
        def grab(self, buddy):
            pfn = buddy.alloc()
            self._frames.append(pfn)
    """
    GOOD_OOM_BREAK = """
        def refill(self, buddy):
            while True:
                try:
                    pfn = buddy.alloc()
                except OutOfMemoryError:
                    break
                self.frames.append(pfn)
    """
    GOOD_ESCAPES_FRAME = """
        @escapes_frame
        def alloc_frame(self, buddy):
            pfn = buddy.alloc()
            if self._sanitize:
                self._audit(pfn)
            return pfn
    """

    def test_leak_on_branch_flagged(self):
        findings = lint(self.BAD_LEAK_ON_BRANCH, "repro.core.vusion")
        assert rule_ids(findings) == ["FLOW003"]
        # The finding anchors at the alloc, so the leak is suppressible
        # (and attributable) where the handle is created.
        assert findings[0].line == 3

    def test_discarded_result_flagged(self):
        assert rule_ids(lint(
            self.BAD_DISCARDED_RESULT, "repro.mem.buddy"
        )) == ["FLOW003"]

    def test_overwrite_flagged(self):
        assert rule_ids(lint(
            self.BAD_OVERWRITTEN, "repro.mem.buddy"
        )) == ["FLOW003"]

    def test_returned_clean(self):
        assert lint(self.GOOD_RETURNED, "repro.mem.buddy") == []

    def test_stored_clean(self):
        assert lint(self.GOOD_STORED, "repro.mem.random_pool") == []

    def test_alloc_in_try_with_oom_break_clean(self):
        assert lint(self.GOOD_OOM_BREAK, "repro.mem.random_pool") == []

    def test_escapes_frame_annotation_skips_function(self):
        assert lint(self.GOOD_ESCAPES_FRAME, "repro.mem.buddy") == []

    def test_out_of_scope_module_ignored(self):
        assert lint(self.BAD_DISCARDED_RESULT, "repro.harness.experiments") == []


# ----------------------------------------------------------------------
# FLOW004 — taint into artifacts
# ----------------------------------------------------------------------
class TestFlow004Taint:
    BAD_RETURNED_TIMESTAMP = """
        import time

        def execute_task(spec, seed):
            started = time.time()
            payload = {"started": started}
            return payload
    """
    BAD_BOUNDARY_DECORATED = """
        import time

        @artifact_boundary
        def run_experiment(spec, seed):
            return {"wall": time.monotonic()}
    """
    BAD_WRITTEN_ARTIFACT = """
        import time

        def save(path):
            stamp = time.time_ns()
            path.write_text(str(stamp))
    """
    BAD_GLOBAL_RNG = """
        import random

        def execute_task(spec, seed):
            return {"jitter": random.random()}
    """
    GOOD_LOCAL_TIMING = """
        import time

        def wait(spec):
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                pass
            return {"spec": spec.name}
    """
    GOOD_SEEDED_RNG = """
        import random

        def execute_task(spec, seed):
            rng = random.Random(seed)
            return {"value": rng.random()}
    """
    GOOD_UNDECORATED_HELPER = """
        import time

        def helper():
            return time.time()
    """

    def test_returned_timestamp_flagged(self):
        assert rule_ids(lint(
            self.BAD_RETURNED_TIMESTAMP, "repro.runner.task"
        )) == ["FLOW004"]

    def test_artifact_boundary_decorator_makes_returns_sinks(self):
        # DET001 also fires on the literal call; isolate the flow rule.
        assert rule_ids(lint(
            self.BAD_BOUNDARY_DECORATED, "repro.harness.experiments",
            rules=["FLOW004"],
        )) == ["FLOW004"]

    def test_artifact_write_flagged(self):
        assert rule_ids(lint(
            self.BAD_WRITTEN_ARTIFACT, "repro.runner.artifacts"
        )) == ["FLOW004"]

    def test_global_rng_flagged(self):
        # DET002 also fires on the literal call; isolate the flow rule.
        assert rule_ids(lint(
            self.BAD_GLOBAL_RNG, "repro.runner.task", rules=["FLOW004"]
        )) == ["FLOW004"]

    def test_local_timing_clean(self):
        assert lint(self.GOOD_LOCAL_TIMING, "repro.runner.pool") == []

    def test_seeded_rng_clean(self):
        assert lint(self.GOOD_SEEDED_RNG, "repro.runner.task") == []

    def test_undecorated_helper_returns_are_not_sinks(self):
        assert lint(self.GOOD_UNDECORATED_HELPER, "repro.runner.pool") == []

    def test_out_of_scope_module_ignored(self):
        # DET001 owns wall-clock use in core; FLOW004 stays out.
        assert lint(
            self.BAD_RETURNED_TIMESTAMP, "repro.core.vusion",
            rules=["FLOW004"],
        ) == []


# ----------------------------------------------------------------------
# Suppressions on flow findings
# ----------------------------------------------------------------------
class TestFlowSuppressions:
    def test_per_line_disable_silences_flow_finding(self):
        source = textwrap.dedent("""
            import time

            def execute_task(spec, seed):
                t = time.time()
                return {"t": t}  # simlint: disable=FLOW004
        """)
        assert lint_source(source, module="repro.runner.task") == []

    def test_disable_all_silences_flow_finding(self):
        source = textwrap.dedent("""
            def grab(self, buddy):
                buddy.alloc()  # simlint: disable=all
        """)
        assert lint_source(source, module="repro.mem.buddy") == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = textwrap.dedent("""
            def grab(self, buddy):
                buddy.alloc()  # simlint: disable=FLOW001
        """)
        findings = lint_source(source, module="repro.mem.buddy")
        assert rule_ids(findings) == ["FLOW003"]

    def test_flow003_suppressible_at_alloc_site(self):
        source = textwrap.dedent("""
            def grab(self, kernel, order):
                pfn = kernel.buddy.alloc(order)  # simlint: disable=FLOW003
                if order > 3:
                    return None
                return pfn
        """)
        assert lint_source(source, module="repro.mem.buddy") == []

    def test_rule_selection_runs_only_flow_rule(self):
        source = textwrap.dedent("""
            import time

            def execute_task(spec, seed):
                seed2 = hash("x")
                return {"t": time.time(), "s": seed2}
        """)
        only_flow = lint_source(
            source, module="repro.runner.task", rule_ids=["FLOW004"]
        )
        assert rule_ids(only_flow) == ["FLOW004"]


# ----------------------------------------------------------------------
# JSON schema v4 (golden file) across the engines
# ----------------------------------------------------------------------
FIXTURE_BOTH_ENGINES = """\
import time

def execute_task(spec, seed):
    bad_seed = hash(spec.name)
    return {"seed": bad_seed, "wall": time.time()}
"""


def make_dual_engine_result() -> LintResult:
    findings = lint_project({
        "src/repro/runner/fixture.py": FIXTURE_BOTH_ENGINES,
    }).findings
    return LintResult(findings=findings, files_scanned=1)


def make_baselined_result() -> LintResult:
    """One finding moved behind a baseline — the filtered finding must
    keep its engine and qualname fields through the JSON reporter."""
    result = make_dual_engine_result()
    flow_finding = next(f for f in result.findings if f.engine == "flow")
    baseline = Baseline(qualname_keys={
        (flow_finding.rule_id, flow_finding.qualname, flow_finding.message)
    })
    return apply_baseline(result, baseline)


class TestJsonSchemaV4:
    def test_schema_version_bumped(self):
        assert JSON_SCHEMA_VERSION == 4

    def test_both_engines_report(self):
        document = json.loads(findings_to_json(make_dual_engine_result()))
        engines = {f["engine"] for f in document["findings"]}
        assert engines == {"ast", "flow"}
        assert document["version"] == 4
        assert set(document["engines"]["flow"]) == (
            set(FLOW_RULES) | set(IP_RULES)
        )
        assert set(document["engines"]["race"]) == set(RACE_RULES)
        assert all(
            document["rules"][rule_id]["engine"] == "flow"
            for rule_id in (*FLOW_RULES, *IP_RULES)
        )
        assert all(
            document["rules"][rule_id]["engine"] == "race"
            for rule_id in RACE_RULES
        )

    def test_findings_carry_qualnames(self):
        document = json.loads(findings_to_json(make_dual_engine_result()))
        assert all(
            f["qualname"] == "repro.runner.fixture.execute_task"
            for f in document["findings"]
        )

    def test_baseline_filtered_findings_keep_engine_and_qualname(self):
        document = json.loads(findings_to_json(make_baselined_result()))
        assert document["baseline"]["applied"] is True
        filtered = document["baseline"]["findings"]
        assert filtered, "expected one baseline-filtered finding"
        assert all(f["engine"] == "flow" for f in filtered)
        assert all(
            f["qualname"] == "repro.runner.fixture.execute_task"
            for f in filtered
        )

    def test_golden_document(self):
        document = findings_to_json(make_baselined_result())
        if os.environ.get("REPRO_REGEN_GOLDEN") == "1":  # pragma: no cover
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(document, encoding="utf-8")
        assert GOLDEN.exists(), (
            "golden file missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        assert document == GOLDEN.read_text(encoding="utf-8"), (
            "JSON report changed: if intentional, bump JSON_SCHEMA_VERSION "
            "as needed and regenerate with REPRO_REGEN_GOLDEN=1"
        )


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip(self, tmp_path):
        result = make_dual_engine_result()
        baseline_path = tmp_path / "baseline.json"
        count = write_baseline(result, baseline_path)
        assert count == len(result.findings)
        keys = load_baseline(baseline_path)
        fresh = make_dual_engine_result()
        apply_baseline(fresh, keys)
        assert fresh.findings == []
        assert len(fresh.baselined) == count
        assert fresh.clean

    def test_new_finding_not_masked(self, tmp_path):
        result = make_dual_engine_result()
        baseline_path = tmp_path / "baseline.json"
        write_baseline(result, baseline_path)
        keys = load_baseline(baseline_path)
        # Same violations in a *different file* must stay active: the
        # baseline keys on (rule, path, message).
        elsewhere = lint_source(
            FIXTURE_BOTH_ENGINES,
            path="src/repro/runner/other.py",
            module="repro.runner.other",
        )
        fresh = LintResult(findings=elsewhere, files_scanned=1)
        apply_baseline(fresh, keys)
        assert fresh.findings and not fresh.baselined
        assert not fresh.clean

    def test_line_moves_do_not_resurrect(self, tmp_path):
        result = make_dual_engine_result()
        baseline_path = tmp_path / "baseline.json"
        write_baseline(result, baseline_path)
        keys = load_baseline(baseline_path)
        shifted = lint_source(
            "# a new leading comment\n# another\n" + FIXTURE_BOTH_ENGINES,
            path="src/repro/runner/fixture.py",
            module="repro.runner.fixture",
        )
        fresh = LintResult(findings=shifted, files_scanned=1)
        apply_baseline(fresh, keys)
        assert fresh.findings == []

    def test_bad_baseline_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="unsupported baseline version"):
            load_baseline(bogus)

    def test_cli_baseline_and_strict(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "repro" / "runner"
        target.mkdir(parents=True)
        mod = target / "fixture.py"
        mod.write_text(FIXTURE_BOTH_ENGINES)
        baseline = tmp_path / "lint-baseline.json"
        assert main([
            "lint", str(mod), "--write-baseline", str(baseline)
        ]) == 0
        assert main(["lint", str(mod), "--baseline", str(baseline)]) == 0
        assert main([
            "lint", str(mod), "--baseline", str(baseline), "--strict"
        ]) == 1
        capsys.readouterr()
