"""Unit tests for VUsion's building blocks: pool, queue, estimator."""

from __future__ import annotations

import pytest

from repro.core.deferred_free import DeferredFreeQueue
from repro.core.random_pool import RandomFramePool
from repro.core.working_set import WorkingSetEstimator
from repro.errors import OutOfMemoryError
from repro.kernel.idle import IdlePageTracker
from repro.kernel.kernel import Kernel
from repro.mem.physmem import FrameType
from repro.mmu.pte import PageTableEntry, PteFlags
from repro.params import MS, MachineSpec

from tests.conftest import small_spec


class TestRandomFramePool:
    def make_pool(self, capacity=64, frames=2048):
        kernel = Kernel(small_spec(frames=frames))
        return kernel, RandomFramePool(kernel, capacity, seed=42)

    def test_prefilled_to_capacity(self):
        _kernel, pool = self.make_pool()
        assert len(pool) == 64

    def test_alloc_sets_type_and_refills(self):
        kernel, pool = self.make_pool()
        pfn = pool.alloc(FrameType.ANON)
        assert kernel.physmem.frame_type(pfn) is FrameType.ANON
        assert len(pool) == 64  # topped back up from the buddy

    def test_pool_frames_marked_free(self):
        kernel, pool = self.make_pool()
        pfn = pool.alloc()
        pool.free(pfn)
        assert kernel.physmem.frame_type(pfn) is FrameType.FREE
        assert pfn in pool

    def test_overflow_spills_oldest(self):
        kernel, pool = self.make_pool(capacity=8)
        taken = [pool.alloc() for _ in range(4)]
        for pfn in taken:
            pool.free(pfn)
        assert len(pool) <= 8
        # Spilled frames are back in the buddy.
        assert kernel.buddy.free_frames() > 0

    def test_reuse_probability_is_low(self):
        _kernel, pool = self.make_pool(capacity=256)
        reuses = 0
        for _ in range(200):
            pfn = pool.alloc()
            pool.free(pfn)
            if pool.alloc() == pfn:
                reuses += 1
        # Expected ~200/256 * ... ~ a handful; deterministic with seed.
        assert reuses < 10

    def test_capacity_capped_by_free_memory(self):
        kernel = Kernel(small_spec(frames=512))
        pool = RandomFramePool(kernel, 2**15, seed=1)
        assert pool.capacity <= kernel.spec.total_frames // 4
        assert pool.requested_capacity == 2**15

    def test_rank_logging(self):
        _kernel, pool = self.make_pool()
        pool.log_ranks = True
        for _ in range(50):
            pool.free(pool.alloc())
        assert len(pool.rank_log) == 50
        assert all(0.0 <= rank <= 1.0 for rank in pool.rank_log)

    def test_rejects_bad_capacity(self):
        kernel = Kernel(small_spec())
        with pytest.raises(ValueError):
            RandomFramePool(kernel, 0, seed=1)

    def test_drain_returns_everything(self):
        kernel, pool = self.make_pool(capacity=16)
        free_before = kernel.buddy.free_frames()
        count = pool.drain()
        assert count == 16
        assert kernel.buddy.free_frames() == free_before + 16
        assert len(pool) == 0


class TestDeferredFreeQueue:
    def make_queue(self):
        kernel = Kernel(small_spec())
        pool = RandomFramePool(kernel, 32, seed=3)
        queue = DeferredFreeQueue(kernel, pool, period=10 * MS)
        return kernel, pool, queue

    def test_free_lands_in_pool_on_drain(self):
        kernel, pool, queue = self.make_queue()
        pfn = pool.alloc()
        queue.queue_free(pfn)
        assert pfn not in pool
        queue.drain()
        assert pfn in pool
        assert queue.drained == 1

    def test_dummy_is_noop(self):
        _kernel, _pool, queue = self.make_queue()
        queue.queue_dummy()
        queue.drain()
        assert queue.dummies == 1

    def test_reclaim_callback_runs_at_drain(self):
        _kernel, _pool, queue = self.make_queue()
        ran = []
        queue.queue_reclaim(lambda: ran.append(True))
        assert not ran
        queue.drain()
        assert ran == [True]

    def test_daemon_drains_on_idle(self):
        kernel, pool, queue = self.make_queue()
        queue.queue_free(pool.alloc())
        kernel.idle(50 * MS)
        assert len(queue) == 0

    def test_enqueue_charges_constant_time(self):
        kernel, pool, queue = self.make_queue()
        # A real allocation: freeing a never-allocated literal pfn would
        # (rightly) trip FrameSan's double-free check.
        pfn = pool.alloc()
        t0 = kernel.clock.now
        queue.queue_dummy()
        dummy_cost = kernel.clock.now - t0
        t0 = kernel.clock.now
        queue.queue_free(pfn)
        free_cost = kernel.clock.now - t0
        assert dummy_cost == free_cost  # the SB-critical property
        queue.drain()


class TestWorkingSetEstimator:
    def make_wse(self, enabled=True, min_idle=100):
        return WorkingSetEstimator(
            IdlePageTracker(), enabled=enabled, min_idle_ns=min_idle
        )

    def pte(self, accessed=False) -> PageTableEntry:
        flags = PteFlags.USER | (PteFlags.ACCESSED if accessed else PteFlags.NONE)
        return PageTableEntry(1, flags)

    def test_disabled_always_candidate(self):
        wse = self.make_wse(enabled=False)
        assert wse.is_candidate((1, 0), self.pte(accessed=True), now=0)

    def test_accessed_page_not_candidate(self):
        wse = self.make_wse()
        assert not wse.is_candidate((1, 0), self.pte(accessed=True), now=0)

    def test_first_sighting_baselined(self):
        wse = self.make_wse()
        assert not wse.is_candidate((1, 0), self.pte(), now=0)

    def test_idle_long_enough_becomes_candidate(self):
        wse = self.make_wse(min_idle=100)
        pte = self.pte(accessed=True)
        wse.is_candidate((1, 0), pte, now=0)   # baseline (clears A)
        assert not wse.is_candidate((1, 0), pte, now=50)
        assert wse.is_candidate((1, 0), pte, now=150)

    def test_activity_resets_the_clock(self):
        wse = self.make_wse(min_idle=100)
        pte = self.pte(accessed=True)
        wse.is_candidate((1, 0), pte, now=0)
        pte.set(PteFlags.ACCESSED)  # page touched again
        assert not wse.is_candidate((1, 0), pte, now=150)
        assert not wse.is_candidate((1, 0), pte, now=200)
        assert wse.is_candidate((1, 0), pte, now=300)

    def test_recently_active(self):
        wse = self.make_wse()
        pte = self.pte(accessed=True)
        wse.is_candidate((1, 0), pte, now=1000)
        assert wse.recently_active((1, 0), now=1400, horizon=500)
        assert not wse.recently_active((1, 0), now=2000, horizon=500)
        assert not wse.recently_active((9, 9), now=1000, horizon=500)

    def test_forget(self):
        wse = self.make_wse(min_idle=100)
        pte = self.pte()
        wse.is_candidate((1, 0), pte, now=0)
        wse.forget((1, 0))
        # Back to first-sighting behaviour.
        assert not wse.is_candidate((1, 0), pte, now=500)
