"""Tests for the deduplication covert channel."""

from __future__ import annotations

import pytest

from repro.attacks.base import AttackEnvironment
from repro.attacks.covert_channel import DedupCovertChannel


class TestTransmission:
    def test_perfect_over_ksm(self):
        result = DedupCovertChannel(AttackEnvironment("ksm")).run()
        assert result.success
        assert result.evidence["correct_bits"] == result.evidence["total_bits"]

    def test_perfect_over_wpf(self):
        result = DedupCovertChannel(AttackEnvironment("wpf")).run()
        assert result.success

    def test_noise_under_vusion(self):
        result = DedupCovertChannel(AttackEnvironment("vusion"),
                                    message_bits=24).run()
        assert not result.success
        # Under SB every probe looks merged-or-not identically; the
        # decoder can do no better than chance.
        correct = result.evidence["correct_bits"]
        total = result.evidence["total_bits"]
        assert correct < total

    def test_different_messages_per_seed(self):
        a = DedupCovertChannel(AttackEnvironment("ksm"), seed=1).run()
        b = DedupCovertChannel(AttackEnvironment("ksm"), seed=2).run()
        assert a.evidence["message"] != b.evidence["message"]
        assert a.success and b.success

    def test_bandwidth_reported(self):
        result = DedupCovertChannel(AttackEnvironment("ksm")).run()
        assert result.evidence["decode_bits_per_s"] > 0

    @pytest.mark.parametrize("bits", [1, 8, 32])
    def test_message_sizes(self, bits):
        result = DedupCovertChannel(AttackEnvironment("ksm"),
                                    message_bits=bits).run()
        assert result.success
