"""FrameSan tests.

Two layers:

* **Explicit-construction unit tests** (always run): build sanitized
  kernels via ``Kernel(sanitize=True)`` or a bare :class:`FrameSan`
  and check each detector — UAF, double free, bad free, CoW violation,
  audit cross-checks, fusion accounting, provenance rendering.
* **Seeded-violation tests** (run only under ``REPRO_SANITIZE=1``,
  skipped otherwise): deliberately corrupt a live kernel the same way
  a buggy engine would and assert the sanitizer fails loudly with a
  structured error.  These prove the env-activated wiring end to end.
"""

from __future__ import annotations

import pytest

from repro.check import (
    AccountingError,
    BadFreeError,
    CowViolationError,
    DoubleFreeError,
    FrameSan,
    SanitizerError,
    UseAfterFreeError,
    sanitizer_enabled,
)
from repro.kernel.kernel import Kernel
from repro.mem.content import tagged_content
from repro.mem.physmem import FrameType, PhysicalMemory
from tests.conftest import small_spec

requires_sanitizer_env = pytest.mark.skipif(
    not sanitizer_enabled(),
    reason="seeded-violation test: set REPRO_SANITIZE=1 to enable",
)


def sanitized_kernel(frames: int = 4096) -> Kernel:
    return Kernel(small_spec(frames=frames), sanitize=True)


def content(tag: object = "x") -> bytes:
    return tagged_content("framesan", tag)


# ----------------------------------------------------------------------
# Activation and wiring
# ----------------------------------------------------------------------
class TestActivation:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        kernel = Kernel(small_spec())
        assert kernel.sanitizer is None
        assert kernel.physmem.sanitizer is None

    def test_env_values(self):
        assert sanitizer_enabled({"REPRO_SANITIZE": "1"})
        assert sanitizer_enabled({"REPRO_SANITIZE": "yes"})
        assert not sanitizer_enabled({"REPRO_SANITIZE": "0"})
        assert not sanitizer_enabled({"REPRO_SANITIZE": "off"})
        assert not sanitizer_enabled({})

    def test_env_activates_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        kernel = Kernel(small_spec())
        assert kernel.sanitizer is not None
        assert kernel.physmem.sanitizer is kernel.sanitizer
        assert kernel.buddy.sanitizer is kernel.sanitizer

    def test_force_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Kernel(small_spec(), sanitize=False).sanitizer is None
        monkeypatch.delenv("REPRO_SANITIZE")
        assert Kernel(small_spec(), sanitize=True).sanitizer is not None

    def test_sanitizer_does_not_perturb_results(self):
        """Shadow-only poisoning: identical simulation either way."""
        def run(sanitize: bool) -> tuple:
            kernel = Kernel(small_spec(), sanitize=sanitize)
            process = kernel.create_process("p")
            vma = process.mmap(32, mergeable=True)
            for index in range(32):
                process.write(
                    vma.start + index * 4096, content(index % 3)
                )
            process.munmap(vma)
            return (
                kernel.clock.now,
                kernel.physmem.mutation_epoch,
                kernel.buddy.free_frames(),
            )

        assert run(False) == run(True)


# ----------------------------------------------------------------------
# Detectors (explicit construction, always run)
# ----------------------------------------------------------------------
class TestUseAfterFree:
    def test_read_of_freed_frame(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.physmem.write(pfn, content())
        kernel.buddy.free(pfn)
        with pytest.raises(UseAfterFreeError) as excinfo:
            kernel.physmem.read(pfn)
        assert excinfo.value.pfn == pfn
        assert "free[buddy]" in excinfo.value.provenance

    def test_write_to_freed_frame(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.buddy.free(pfn)
        with pytest.raises(UseAfterFreeError):
            kernel.physmem.write(pfn, content())

    def test_copy_checks_both_ends(self):
        kernel = sanitized_kernel()
        src = kernel.buddy.alloc()
        dst = kernel.buddy.alloc()
        kernel.buddy.free(src)
        with pytest.raises(UseAfterFreeError):
            kernel.physmem.copy(src, dst)
        kernel.buddy.free(dst)

    def test_peek_content_bypasses_check(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.physmem.write(pfn, content("peek"))
        kernel.buddy.free(pfn)
        assert kernel.physmem.peek_content(pfn) == content("peek")

    def test_realloc_clears_poison(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.buddy.free(pfn)
        again = kernel.buddy.alloc_specific(pfn)
        assert again == pfn
        kernel.physmem.write(pfn, content())  # no raise
        kernel.buddy.free(pfn)


class TestBadFrees:
    def test_double_free(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.buddy.free(pfn)
        # The buddy's own overlap check is bypassed by freeing through
        # the sanitizer hook directly (as a buggy caller with a stale
        # pfn would via the random pool).
        with pytest.raises(DoubleFreeError):
            kernel.sanitizer.on_free(pfn, 1, "pool")

    def test_free_with_live_refcount(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.physmem.get_ref(pfn)
        with pytest.raises(BadFreeError, match="refcount"):
            kernel.buddy.free(pfn)
        kernel.physmem.put_ref(pfn)
        kernel.buddy.free(pfn)

    def test_free_while_mapped(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.physmem.rmap_add(pfn, 1, 0x1000)
        with pytest.raises(BadFreeError, match="mapped"):
            kernel.buddy.free(pfn)
        kernel.physmem.rmap_remove(pfn, 1, 0x1000)
        kernel.buddy.free(pfn)

    def test_free_while_fusion_pinned(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.physmem.pin_fused(pfn)
        with pytest.raises(BadFreeError, match="pinned"):
            kernel.buddy.free(pfn)
        kernel.physmem.unpin_fused(pfn)
        kernel.buddy.free(pfn)


class TestCowViolation:
    def test_write_to_shared_frame(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.physmem.get_ref(pfn)
        kernel.physmem.get_ref(pfn)
        with pytest.raises(CowViolationError) as excinfo:
            kernel.physmem.write(pfn, content())
        assert excinfo.value.pfn == pfn
        kernel.physmem.put_ref(pfn)
        kernel.physmem.put_ref(pfn)
        kernel.buddy.free(pfn)

    def test_exclusive_write_allowed(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.physmem.get_ref(pfn)
        kernel.physmem.write(pfn, content())  # refcount 1: fine
        kernel.physmem.put_ref(pfn)
        kernel.buddy.free(pfn)

    def test_rowhammer_bypasses_by_design(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.physmem.write(pfn, content())
        kernel.physmem.get_ref(pfn)
        kernel.physmem.get_ref(pfn)
        # A flip in a shared frame is the studied phenomenon, not a bug.
        kernel.physmem.corrupt_bit(pfn, 0, 3)


# ----------------------------------------------------------------------
# Audit
# ----------------------------------------------------------------------
class TestAudit:
    def test_clean_kernel_audits_clean(self):
        kernel = sanitized_kernel()
        process = kernel.create_process("p")
        vma = process.mmap(8, mergeable=True)
        for index in range(8):
            process.write(vma.start + index * 4096, content(index))
        assert kernel.sanitizer.audit(kernel.fusion) == []
        kernel.sanitizer.assert_clean(kernel.fusion)

    def test_detects_refcount_undercount(self):
        physmem = PhysicalMemory(8)
        sanitizer = FrameSan(physmem)
        physmem.set_frame_type(3, FrameType.ANON)
        physmem.rmap_add(3, 1, 0)
        physmem.rmap_add(3, 2, 0)
        physmem.get_ref(3)
        problems = sanitizer.audit()
        assert any("undercounted" in problem for problem in problems)

    def test_detects_leaked_frame(self):
        physmem = PhysicalMemory(8)
        sanitizer = FrameSan(physmem)
        physmem.set_frame_type(5, FrameType.ANON)
        problems = sanitizer.audit()
        assert any("leaked pfn 5" in problem for problem in problems)
        with pytest.raises(AccountingError, match="leaked pfn 5"):
            sanitizer.assert_clean()

    def test_detects_broken_pin_accounting(self):
        physmem = PhysicalMemory(8)
        sanitizer = FrameSan(physmem, zero_frame=0)
        physmem.set_frame_type(4, FrameType.ANON)
        physmem.rmap_add(4, 1, 0)
        physmem.get_ref(4)
        physmem.pin_fused(4)  # pin without its pin reference
        problems = sanitizer.audit()
        assert any("pin accounting" in problem for problem in problems)

    def test_detects_free_frame_still_referenced(self):
        physmem = PhysicalMemory(8)
        sanitizer = FrameSan(physmem)
        physmem.get_ref(2)  # typed FREE but referenced
        problems = sanitizer.audit()
        assert any("free pfn 2 has refcount" in problem for problem in problems)

    def test_deferred_free_queue_is_not_a_leak(self):
        """A frame in VUsion's deferred-free queue is in flight, not
        leaked — unreferenced by design until the next daemon drain."""
        from repro.core.vusion import Vusion

        kernel = sanitized_kernel()
        vusion = kernel.attach_fusion(Vusion())
        process = kernel.create_process("p")
        vma = process.mmap(8, mergeable=True)
        for index in range(8):
            process.write(vma.start + index * 4096, content(index % 2))
        kernel.idle(500_000_000)  # merge, re-randomize, queue frees
        assert kernel.sanitizer.audit(kernel.fusion) == []
        # After a full drain the queue is empty and the audit still holds.
        vusion.deferred.drain()
        assert vusion.pending_frees() == frozenset()
        assert kernel.sanitizer.audit(kernel.fusion) == []

    def test_fusion_accounting_checks(self):
        class BrokenEngine:
            name = "broken"

            def saved_frames(self):
                return 7

            def sharing_pairs(self):
                return (4, 2)  # sharing < shared AND saved mismatched

        physmem = PhysicalMemory(4)
        sanitizer = FrameSan(physmem)
        problems = sanitizer.check_fusion_accounting(BrokenEngine())
        assert any("pages_sharing" in problem for problem in problems)
        assert any("saved_frames()" in problem for problem in problems)


class TestDiagnostics:
    def test_structured_error_fields(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.buddy.free(pfn)
        with pytest.raises(SanitizerError) as excinfo:
            kernel.physmem.read(pfn)
        error = excinfo.value
        assert error.pfn == pfn
        assert error.diagnostic.startswith("[FrameSan:UseAfterFreeError]")
        assert f"pfn {pfn}" in error.provenance

    def test_provenance_records_lifecycle(self):
        kernel = sanitized_kernel()
        pfn = kernel.buddy.alloc()
        kernel.buddy.free(pfn)
        trail = kernel.sanitizer.provenance.describe(pfn)
        assert "alloc[buddy]" in trail
        assert "free[buddy]" in trail

    def test_pool_diagnostic_extraction(self):
        from repro.runner.pool import extract_diagnostic

        detail = (
            "Traceback ...\n"
            "[FrameSan:UseAfterFreeError] read of freed pfn 9 | pfn 9: ...\n"
            "UseAfterFreeError: ...\n"
        )
        extracted = extract_diagnostic(detail)
        assert extracted is not None
        assert extracted.startswith("[FrameSan:UseAfterFreeError]")
        assert extract_diagnostic("plain failure") is None
        assert extract_diagnostic(None) is None


# ----------------------------------------------------------------------
# Seeded violations (end-to-end, need REPRO_SANITIZE=1 in the env)
# ----------------------------------------------------------------------
class TestSeededViolations:
    """Each test plants the bug a detector exists for and demands a
    loud, structured failure from the env-activated sanitizer."""

    @requires_sanitizer_env
    def test_seeded_use_after_free(self):
        kernel = Kernel(small_spec())
        assert kernel.sanitizer is not None, "env wiring broken"
        pfn = kernel.buddy.alloc()
        kernel.physmem.write(pfn, content("dangling"))
        kernel.buddy.free(pfn)
        # The dangling-pointer bug: touching the frame after free.
        with pytest.raises(UseAfterFreeError):
            kernel.physmem.read(pfn)

    @requires_sanitizer_env
    def test_seeded_refcount_leak(self):
        kernel = Kernel(small_spec())
        process = kernel.create_process("p")
        vma = process.mmap(4, mergeable=True)
        for index in range(4):
            process.write(vma.start + index * 4096, content(index))
        # The leak: an extra reference nobody will ever drop.
        pfn = kernel.buddy.alloc()
        kernel.physmem.set_frame_type(pfn, FrameType.ANON)
        with pytest.raises(AccountingError, match="leaked"):
            kernel.sanitizer.assert_clean(kernel.fusion)

    @requires_sanitizer_env
    def test_seeded_cow_violation(self):
        kernel = Kernel(small_spec())
        pfn = kernel.buddy.alloc()
        kernel.physmem.get_ref(pfn)
        kernel.physmem.get_ref(pfn)
        # The merge bug: writing a shared frame without unmerging.
        with pytest.raises(CowViolationError):
            kernel.physmem.write(pfn, content("smash"))
