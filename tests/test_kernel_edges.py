"""Edge cases of the kernel: huge CoW, hammer API, fault-loop guards."""

from __future__ import annotations

import pytest

from repro.errors import FusionError, ProtectionFault, SegmentationFault
from repro.kernel.access import AccessKind
from repro.kernel.kernel import Kernel, ZERO_FRAME
from repro.mem.content import tagged_content
from repro.mmu.pte import PteFlags
from repro.params import MachineSpec, PAGE_SIZE, PAGES_PER_HUGE_PAGE

from tests.conftest import small_spec


class TestHammerApi:
    def test_hammer_reads_and_flips(self):
        kernel = Kernel(small_spec(frames=16384), thp_fault_enabled=True)
        kernel.rowhammer.row_vulnerability = 1.0
        proc = kernel.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        proc.write(vma.start, b"head")
        flips = proc.hammer(vma.start, vma.start + 32 * PAGE_SIZE)
        assert flips
        head = proc.address_space.page_table.walk(vma.start).pte.pfn
        assert all(head + 16 <= f.pfn <= head + 17 for f in flips)

    def test_hammer_unmapped_raises(self):
        kernel = Kernel(small_spec())
        proc = kernel.create_process("p")
        with pytest.raises(SegmentationFault):
            proc.hammer(0xDEAD000, 0xBEEF000)

    def test_hammer_counts_rounds(self):
        kernel = Kernel(small_spec())
        proc = kernel.create_process("p")
        vma = proc.mmap(2)
        proc.write(vma.start, b"a")
        proc.write(vma.start + PAGE_SIZE, b"b")
        t0 = kernel.clock.now
        proc.hammer(vma.start, vma.start + PAGE_SIZE, rounds=5)
        assert kernel.clock.now - t0 >= 5 * kernel.costs.hammer_round


class TestHugeCow:
    def test_shared_huge_page_copies_on_write(self):
        """A COW huge mapping with shared subframes is copied whole."""
        kernel = Kernel(small_spec(frames=16384), thp_fault_enabled=True)
        proc = kernel.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        proc.write(vma.start, b"orig")
        walk = proc.address_space.page_table.walk(vma.start)
        head = walk.pte.pfn
        # Simulate sharing: extra refs + COW, clear writable.
        for index in range(PAGES_PER_HUGE_PAGE):
            kernel.physmem.get_ref(head + index)
        walk.pte.clear(PteFlags.WRITABLE)
        walk.pte.set(PteFlags.COW)
        proc.tlb.flush()
        result = proc.write(vma.start, b"new")
        assert "cow" in result.fault_kinds
        new_walk = proc.address_space.page_table.walk(vma.start)
        assert new_walk.pte.pfn != head
        assert new_walk.huge
        assert proc.read(vma.start).content == b"new"
        for index in range(PAGES_PER_HUGE_PAGE):
            kernel.physmem.put_ref(head + index)

    def test_exclusive_cow_huge_just_remaps(self):
        kernel = Kernel(small_spec(frames=16384), thp_fault_enabled=True)
        proc = kernel.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        proc.write(vma.start, b"orig")
        walk = proc.address_space.page_table.walk(vma.start)
        head = walk.pte.pfn
        walk.pte.clear(PteFlags.WRITABLE)
        walk.pte.set(PteFlags.COW)
        proc.tlb.flush()
        proc.write(vma.start, b"new")
        after = proc.address_space.page_table.walk(vma.start)
        assert after.pte.pfn == head  # refcount 1: no copy needed
        assert after.pte.writable


class TestFaultPathGuards:
    def test_reserved_without_engine_is_protection_fault(self):
        kernel = Kernel(small_spec())
        proc = kernel.create_process("p")
        vma = proc.mmap(1)
        proc.write(vma.start, b"x")
        walk = proc.address_space.page_table.walk(vma.start)
        walk.pte.set(PteFlags.RESERVED)
        proc.tlb.flush()
        with pytest.raises(ProtectionFault):
            proc.read(vma.start)

    def test_zero_frame_never_writable(self):
        kernel = Kernel(small_spec())
        procs = [kernel.create_process(f"p{i}") for i in range(4)]
        for proc in procs:
            vma = proc.mmap(2)
            proc.read(vma.start)
            proc.read(vma.start + PAGE_SIZE)
            proc.write(vma.start, b"private")
        assert kernel.physmem.read(ZERO_FRAME) == b""

    def test_rewrite_keeps_content(self):
        kernel = Kernel(small_spec())
        proc = kernel.create_process("p")
        vma = proc.mmap(1)
        proc.write(vma.start, b"keep me")
        proc.rewrite(vma.start)
        assert proc.read(vma.start).content == b"keep me"

    def test_access_kind_values(self):
        assert AccessKind.READ.value == "read"
        assert AccessKind.WRITE.value == "write"
        assert AccessKind.FETCH.value == "fetch"


class TestFileInvalidation:
    def test_invalidate_skips_absent_pages(self):
        kernel = Kernel(small_spec())
        proc = kernel.create_process("p")
        proc.file_store.register_file("f", 8)
        vma = proc.mmap(8, file_key="f")
        proc.read(vma.start)  # only page 0 resident
        dropped = kernel.invalidate_file_pages(proc, vma)
        assert dropped == 1

    def test_refault_uses_new_generation(self):
        kernel = Kernel(small_spec())
        proc = kernel.create_process("p")
        proc.file_store.register_file("f", 1)
        vma = proc.mmap(1, file_key="f")
        first = proc.read(vma.start).content
        proc.file_store.rewrite_file("f")
        # Still cached: old content until invalidated.
        assert proc.read(vma.start).content == first
        kernel.invalidate_file_pages(proc, vma)
        assert proc.read(vma.start).content != first


class TestFrameAccounting:
    def test_alloc_free_roundtrip_accounting(self):
        kernel = Kernel(small_spec())
        from repro.mem.physmem import FrameType

        used_before = kernel.frames_in_use()
        pfn = kernel.alloc_frame(FrameType.ANON)
        assert kernel.frames_in_use() == used_before + 1
        kernel.free_frame(pfn)
        assert kernel.frames_in_use() == used_before

    def test_order9_alloc_accounting(self):
        kernel = Kernel(small_spec(frames=16384))
        from repro.mem.physmem import FrameType

        used_before = kernel.frames_in_use()
        head = kernel.alloc_frame(FrameType.ANON, order=9)
        assert kernel.frames_in_use() == used_before + 512
        kernel.free_frame(head, order=9)
        assert kernel.frames_in_use() == used_before
