"""Ablations of VUsion's §7.1 design decisions.

Each test disables exactly one mechanism and shows the specific attack
or cost it was added to stop — evidence that every piece of the design
is load-bearing.
"""

from __future__ import annotations

import pytest

scipy_stats = pytest.importorskip(
    "scipy.stats",
    reason="KS ablation checks need the repro[fast] extra",
    exc_type=ImportError,
)

from repro.attacks import AttackEnvironment, PrefetchAttack
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE, MS, SECOND


def timing_populations(engine_name: str, samples: int = 48):
    """Interleaved write timings of merged vs fake-merged candidates."""
    env = AttackEnvironment(engine_name, frames=32768)
    shared = env.attacker.mmap(samples, name="abl-shared", mergeable=True)
    twin = env.victim.mmap(samples, name="abl-twin", mergeable=True)
    unique = env.attacker.mmap(samples, name="abl-unique", mergeable=True)
    for index in range(samples):
        content = tagged_content("abl", index)
        env.attacker.write(shared.start + index * PAGE_SIZE, content)
        env.victim.write(twin.start + index * PAGE_SIZE, content)
        env.attacker.write(
            unique.start + index * PAGE_SIZE, tagged_content("abl-u", index)
        )
    env.wait_for_fusion(passes=3)
    merged_times = []
    fake_times = []
    for index in range(samples):
        merged_times.append(
            env.attacker.rewrite(shared.start + index * PAGE_SIZE).latency
        )
        fake_times.append(
            env.attacker.rewrite(unique.start + index * PAGE_SIZE).latency
        )
    return merged_times, fake_times


class TestDeferredFreeAblation:
    """Decision (ii): inline frees re-open the unmerge timing channel."""

    def test_secure_variant_is_symmetric(self):
        merged, fake = timing_populations("vusion")
        pvalue = scipy_stats.ks_2samp(merged, fake).pvalue
        assert pvalue > 0.05

    def test_ablated_variant_is_distinguishable(self):
        merged, fake = timing_populations("vusion-nodefer")
        # Fake-merged pages die on unmerge and pay the inline free;
        # merged pages do not.  The distributions separate cleanly.
        pvalue = scipy_stats.ks_2samp(merged, fake).pvalue
        assert pvalue < 0.01
        assert sorted(fake)[len(fake) // 2] > sorted(merged)[len(merged) // 2]


class TestCacheDisableAblation:
    """The CD bit stops prefetch-based merge detection."""

    def test_prefetch_attack_defeated_with_cd(self):
        result = PrefetchAttack(AttackEnvironment("vusion", frames=32768)).run()
        assert not result.success
        # Every prefetch is dropped identically: no differential at all.
        assert result.evidence["hits_correct"] == result.evidence["hits_wrong"]

    def test_prefetch_attack_succeeds_without_cd(self):
        result = PrefetchAttack(
            AttackEnvironment("vusion-nocd", frames=32768)
        ).run()
        assert result.success

    def test_prefetch_attack_succeeds_against_ksm(self):
        result = PrefetchAttack(AttackEnvironment("ksm", frames=32768)).run()
        assert result.success


class TestRerandomizationAblation:
    """Decision (iii): stable backing frames leak merges across scans."""

    def _observe_backing_colors(self, engine_name: str, rounds: int = 4):
        """Backing-frame colors of a merged and a fake-merged page
        across repeated unmerge/re-fuse cycles.

        The attacker-observable is the source-frame color leaked by the
        fault handler's copy (the paper's advanced coloring attack);
        the test reads the equivalent ground truth.
        """
        env = AttackEnvironment(engine_name, frames=32768)
        secret = tagged_content("rr-secret")
        cand = env.attacker.mmap(2, name="rr", mergeable=True)
        merged_page, fake_page = cand.start, cand.start + PAGE_SIZE
        env.attacker.write(merged_page, secret)
        env.attacker.write(fake_page, tagged_content("rr-unique"))
        victim_vma = env.victim.mmap(1, name="rr-victim", mergeable=True)
        env.victim.write(victim_vma.start, secret)
        colors = {"merged": [], "fake": []}
        page_table = env.attacker.address_space.page_table
        for _ in range(rounds):
            env.wait_for_fusion(passes=3)
            for label, vaddr in (("merged", merged_page), ("fake", fake_page)):
                walk = page_table.walk(vaddr)
                if walk is not None and walk.pte.fused:
                    colors[label].append(
                        env.kernel.llc.color_of_frame(walk.pte.pfn)
                    )
            # CoA both candidates (the attacker's probe unmerges them).
            env.attacker.read(merged_page)
            env.attacker.read(fake_page)
        return colors

    def test_ablated_variant_leaks_merge_via_stable_color(self):
        colors = self._observe_backing_colors("vusion-norerand")
        assert len(colors["merged"]) >= 3
        # Without (iii) the merged candidate re-joins the same
        # long-lived node every round: its backing color never changes.
        assert len(set(colors["merged"])) == 1
        # The fake-merged candidate gets a fresh random frame per cycle.
        assert len(set(colors["fake"])) > 1

    def test_secure_variant_randomizes_both(self):
        colors = self._observe_backing_colors("vusion")
        assert len(colors["merged"]) >= 3
        assert len(set(colors["merged"])) > 1
        assert len(set(colors["fake"])) > 1


class TestWorkingSetAblation:
    """§7.2: without estimation, working-set pages fuse and thrash."""

    def _hot_page_fused(self, engine_name: str) -> tuple[bool, int]:
        env = AttackEnvironment(engine_name, frames=32768)
        hot = env.attacker.mmap(1, name="hot", mergeable=True)
        env.attacker.write(hot.start, tagged_content("hot-data"))
        coa_before = env.engine.stats.coa_unmerges
        fused_seen = False
        for _ in range(400):
            result = env.attacker.read(hot.start)
            if "copy_on_access" in result.fault_kinds:
                fused_seen = True
            env.kernel.idle(15 * MS)
        return fused_seen, env.engine.stats.coa_unmerges - coa_before

    def test_naive_vusion_fuses_hot_pages(self):
        fused, coa_count = self._hot_page_fused("vusion-naive")
        assert fused, "naive VUsion must fuse even hot pages"
        assert coa_count > 10, "hot page thrashes through copy-on-access"

    def test_standard_vusion_spares_hot_pages(self):
        fused, coa_count = self._hot_page_fused("vusion")
        assert not fused
        assert coa_count == 0
