"""Unit tests for simflow's CFG builder and dataflow solvers."""

from __future__ import annotations

import ast
import textwrap

from repro.check.cfg import (
    EXCEPTION,
    FALSE,
    LOOP,
    RAISE,
    TRUE,
    FunctionCFG,
    build_cfg,
    iter_functions,
)
from repro.check.lattice import (
    MutableState,
    join,
    solve_forward,
    solve_must_reach,
)


def cfg_of(source: str, name: str | None = None) -> FunctionCFG:
    tree = ast.parse(textwrap.dedent(source))
    funcs = list(iter_functions(tree))
    if name is not None:
        funcs = [f for f in funcs if f.name == name]
    (func,) = funcs
    return build_cfg(func)


def edge_kinds(cfg: FunctionCFG) -> set[str]:
    return {
        kind
        for block in cfg.blocks.values()
        for _succ, kind in block.succs
    }


def stmts_of(cfg: FunctionCFG) -> list[ast.AST]:
    return [
        node
        for block_id in sorted(cfg.reachable_ids())
        for node in cfg.block(block_id).nodes
    ]


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
class TestCfgShapes:
    def test_straight_line(self):
        cfg = cfg_of("""
            def f(x):
                y = x + 1
                return y
        """)
        reachable = cfg.reachable_ids()
        assert cfg.exit in reachable
        # Single linear path: every reachable non-virtual block has at
        # most one non-exception successor.
        assert all(
            len(cfg.block(b).succs) <= 1
            for b in reachable
            if b not in (cfg.exit, cfg.raise_exit)
        )

    def test_if_else_has_true_false_edges_and_join(self):
        cfg = cfg_of("""
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
        """)
        assert {TRUE, FALSE} <= edge_kinds(cfg)
        # The return statement's block is reached from both arms.
        ret_blocks = [
            b for b in cfg.reachable_ids()
            if any(isinstance(n, ast.Return) for n in cfg.block(b).nodes)
        ]
        (ret_block,) = ret_blocks
        # Walk one step back: the join block has two predecessors.
        preds = cfg.block(ret_block).preds
        assert len(preds) >= 1

    def test_while_has_loop_back_edge(self):
        cfg = cfg_of("""
            def f(x):
                while x > 0:
                    x -= 1
                return x
        """)
        assert LOOP in edge_kinds(cfg)

    def test_for_header_gets_synthetic_assign(self):
        cfg = cfg_of("""
            def f(items):
                for item in items:
                    use(item)
        """)
        synthetic = [
            node for node in stmts_of(cfg)
            if isinstance(node, ast.Assign)
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "item"
        ]
        assert synthetic, "for-loop target must appear as a synthetic Assign"

    def test_with_as_gets_synthetic_assign(self):
        cfg = cfg_of("""
            def f(path):
                with open(path) as fh:
                    fh.read()
        """)
        synthetic = [
            node for node in stmts_of(cfg)
            if isinstance(node, ast.Assign)
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "fh"
        ]
        assert synthetic

    def test_return_reaches_exit_not_raise_exit(self):
        cfg = cfg_of("""
            def f():
                return 1
        """)
        assert cfg.exit in cfg.reachable_ids()

    def test_raise_routes_to_raise_exit(self):
        cfg = cfg_of("""
            def f():
                raise ValueError("boom")
        """)
        reachable = cfg.reachable_ids()
        assert cfg.raise_exit in reachable
        kinds = edge_kinds(cfg)
        assert RAISE in kinds

    def test_try_body_has_exception_edges_to_handler(self):
        cfg = cfg_of("""
            def f():
                try:
                    risky()
                except ValueError:
                    handle()
        """)
        assert EXCEPTION in edge_kinds(cfg)

    def test_early_return_routes_through_finally(self):
        cfg = cfg_of("""
            def f(x):
                try:
                    if x:
                        return 1
                    other()
                finally:
                    cleanup()
        """)
        # cleanup() must lie on the path of the early return: the block
        # containing the return must NOT have a direct edge to exit.
        for block in cfg.blocks.values():
            if any(isinstance(n, ast.Return) for n in block.nodes):
                assert (cfg.exit, "normal") not in block.succs

    def test_dead_code_is_unreachable(self):
        cfg = cfg_of("""
            def f():
                return 1
                x = 2
        """)
        dead = [
            b for b in cfg.blocks
            if any(isinstance(n, ast.Assign) for n in cfg.block(b).nodes)
        ]
        assert dead
        assert not set(dead) & cfg.reachable_ids()

    def test_nested_defs_stay_opaque(self):
        source = """
            def outer():
                def inner():
                    return time_bomb()
                return inner
        """
        tree = ast.parse(textwrap.dedent(source))
        names = sorted(f.name for f in iter_functions(tree))
        assert names == ["inner", "outer"]
        outer = build_cfg(next(
            f for f in iter_functions(tree) if f.name == "outer"
        ))
        # inner's body is not inlined into outer's blocks: the only
        # top-level elements are the (opaque) def and the return.
        top_level = [
            type(node).__name__
            for block_id in sorted(outer.reachable_ids())
            for node in outer.block(block_id).nodes
        ]
        assert top_level == ["FunctionDef", "Return"]

    def test_decorator_names(self):
        cfg = cfg_of("""
            @repro.annotations.escapes_frame
            @functools.wraps(f)
            def f():
                pass
        """)
        assert cfg.decorator_names() == {"escapes_frame", "wraps"}


# ----------------------------------------------------------------------
# Solvers
# ----------------------------------------------------------------------
def _assign_transfer(node, state: MutableState) -> None:
    """Tiny constant-ish analysis: x = <lit> sets a fact per target."""
    if isinstance(node, ast.Assign) and isinstance(node.targets[0], ast.Name):
        value = node.value
        if isinstance(value, ast.Constant):
            state.replace(node.targets[0].id, f"const:{value.value}")
        else:
            state.replace(node.targets[0].id, "unknown")


class TestSolvers:
    def test_forward_joins_branches(self):
        cfg = cfg_of("""
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
        """)
        pre = solve_forward(cfg, _assign_transfer)
        assert pre[cfg.exit]["x"] == frozenset({"const:1", "const:2"})

    def test_forward_loop_reaches_fixpoint(self):
        cfg = cfg_of("""
            def f(n):
                x = 0
                while n:
                    x = 1
                return x
        """)
        pre = solve_forward(cfg, _assign_transfer)
        assert pre[cfg.exit]["x"] == frozenset({"const:0", "const:1"})

    def test_exception_edges_carry_pre_state(self):
        # The assignment inside try may raise *before* completing, so
        # the handler must still see the pre-try fact for x.
        cfg = cfg_of("""
            def f():
                x = 1
                try:
                    x = risky()
                except ValueError:
                    return x
                return x
        """)
        pre = solve_forward(cfg, _assign_transfer)
        handler_blocks = [
            b for b in cfg.reachable_ids()
            if any(
                kind == EXCEPTION for _src, kind in cfg.block(b).preds
            )
        ]
        assert handler_blocks
        assert any(
            "const:1" in pre[b].get("x", frozenset()) for b in handler_blocks
        )

    def test_unreachable_blocks_have_no_state(self):
        cfg = cfg_of("""
            def f():
                return 1
                x = 2
        """)
        pre = solve_forward(cfg, _assign_transfer)
        assert set(pre) <= cfg.reachable_ids()

    def test_must_reach_all_paths(self):
        cfg = cfg_of("""
            def f(c):
                op()
                if c:
                    charge()
                else:
                    charge()
                return
        """)
        def has_charge(block):
            return any(
                isinstance(n, ast.Expr)
                and isinstance(n.value, ast.Call)
                and isinstance(n.value.func, ast.Name)
                and n.value.func.id == "charge"
                for n in block.nodes
            )
        reached = solve_must_reach(cfg, has_charge)
        op_block = next(
            b for b in cfg.reachable_ids()
            if any(
                isinstance(n, ast.Expr)
                and isinstance(n.value, ast.Call)
                and isinstance(n.value.func, ast.Name)
                and n.value.func.id == "op"
                for n in cfg.block(b).nodes
            )
        )
        assert reached[op_block] is True

    def test_must_reach_fails_on_skipping_branch(self):
        cfg = cfg_of("""
            def f(c):
                op()
                if c:
                    return
                charge()
                return
        """)
        def has_charge(block):
            return any(
                isinstance(n, ast.Expr)
                and isinstance(n.value, ast.Call)
                and isinstance(n.value.func, ast.Name)
                and n.value.func.id == "charge"
                for n in block.nodes
            )
        reached = solve_must_reach(cfg, has_charge)
        op_block = next(
            b for b in cfg.reachable_ids()
            if any(
                isinstance(n, ast.Expr)
                and isinstance(n.value, ast.Call)
                and isinstance(n.value.func, ast.Name)
                and n.value.func.id == "op"
                for n in cfg.block(b).nodes
            )
        )
        assert reached[op_block] is False

    def test_must_reach_raise_paths_vacuous(self):
        cfg = cfg_of("""
            def f(c):
                op()
                if c:
                    raise ValueError("abort")
                charge()
                return
        """)
        def has_charge(block):
            return any(
                isinstance(n, ast.Expr)
                and isinstance(n.value, ast.Call)
                and isinstance(n.value.func, ast.Name)
                and n.value.func.id == "charge"
                for n in block.nodes
            )
        reached = solve_must_reach(cfg, has_charge)
        op_block = next(
            b for b in cfg.reachable_ids()
            if any(
                isinstance(n, ast.Expr)
                and isinstance(n.value, ast.Call)
                and isinstance(n.value.func, ast.Name)
                and n.value.func.id == "op"
                for n in cfg.block(b).nodes
            )
        )
        assert reached[op_block] is True

    def test_join_is_keywise_union(self):
        left = {"x": frozenset({"a"}), "y": frozenset({"b"})}
        right = {"x": frozenset({"c"})}
        merged = join(left, right)
        assert merged == {
            "x": frozenset({"a", "c"}),
            "y": frozenset({"b"}),
        }
