"""Mutation meta-test: the analyzer is itself under test.

Each case plants one realistic bug — a single edit — into the *real*
engine sources (``vusion.py``, ``ksm.py``, ``buddy.py``, ``task.py``,
``wpf.py``, ``artifacts.py``) and asserts the matching FLOW rule
catches it.  The intraprocedural cases lint the mutated file alone;
the interprocedural cases lint the whole ``src`` tree with the mutated
file swapped in, because FLOW003-ip/FLOW004-ip/FLOW005/FLOW006 only
fire across function boundaries.  The dual is pinned too: the pristine
tree must analyze completely clean under every flow rule, with zero
FLOW suppressions in ``repro.core``/``repro.fusion``/``repro.mem``/
``repro.runner``.  Together these bound both false negatives and
false positives on the code that matters.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.check import lint_paths, lint_project, lint_source, render_findings
from repro.check.engine import module_name_for

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
VUSION = SRC / "repro" / "core" / "vusion.py"
KSM = SRC / "repro" / "fusion" / "ksm.py"
BUDDY = SRC / "repro" / "mem" / "buddy.py"
TASK = SRC / "repro" / "runner" / "task.py"
WPF = SRC / "repro" / "fusion" / "wpf.py"
ARTIFACTS = SRC / "repro" / "runner" / "artifacts.py"

FLOW_IDS = ("FLOW001", "FLOW002", "FLOW003", "FLOW004")
IP_IDS = ("FLOW003-ip", "FLOW004-ip", "FLOW005", "FLOW006")

_BASE_SOURCES: dict[str, str] | None = None


def base_sources() -> dict[str, str]:
    """The pristine ``src`` tree, read once per test session."""
    global _BASE_SOURCES
    if _BASE_SOURCES is None:
        _BASE_SOURCES = {
            str(path): path.read_text(encoding="utf-8")
            for path in sorted(SRC.rglob("*.py"))
        }
    return _BASE_SOURCES


def mutate(path: pathlib.Path, old: str, new: str) -> str:
    """One-edit mutant of a real source file; the anchor must be unique."""
    source = path.read_text(encoding="utf-8")
    occurrences = source.count(old)
    assert occurrences == 1, (
        f"mutation anchor matched {occurrences}x in {path.name}; the "
        f"meta-test needs updating: {old!r}"
    )
    return source.replace(old, new, 1)


def flow_findings(source: str, path: pathlib.Path):
    return [
        finding
        for finding in lint_source(
            source, path=str(path), module=module_name_for(path)
        )
        if finding.rule_id in FLOW_IDS
    ]


MUTANTS = [
    pytest.param(
        VUSION,
        "kernel.map_page(process, vaddr, node.pfn, self._fused_flags)",
        "kernel.map_page(process, vaddr, node.pfn, "
        "PteFlags.USER | PteFlags.WRITABLE)",
        "FLOW001",
        id="vusion-merge-maps-shared-node-accessible",
    ),
    pytest.param(
        KSM,
        "kernel.map_page(process, vaddr, node.pfn, self._fused_flags())",
        "kernel.map_page(process, vaddr, node.pfn, "
        "PteFlags.USER | PteFlags.WRITABLE)",
        "FLOW001",
        id="ksm-merge-skips-cache-disable-path",
    ),
    pytest.param(
        VUSION,
        "kernel.map_page(process, vaddr, new_pfn, self._fused_flags)",
        "kernel.map_page(process, vaddr, new_pfn, "
        "PteFlags.USER | PteFlags.WRITABLE)",
        "FLOW001",
        id="vusion-fake-merge-pins-accessible-frame",
    ),
    pytest.param(
        VUSION,
        "        kernel.map_page(process, vaddr, node.pfn, self._fused_flags)\n"
        "        self.stats.merges += 1",
        "        kernel.map_page(process, vaddr, node.pfn, self._fused_flags)\n"
        "        if refcount:\n"
        "            return\n"
        "        self.stats.merges += 1",
        "FLOW002",
        id="vusion-merge-early-return-drops-charge",
    ),
    pytest.param(
        KSM,
        "        self._maybe_release_node(node_pfn)\n"
        "        kernel.emit(\"fusion:unmerge\", pid=process.pid, "
        "vaddr=vaddr, pfn=node_pfn)",
        "        self._maybe_release_node(node_pfn)",
        "FLOW002",
        id="ksm-unmerge-drops-ledger-event",
    ),
    pytest.param(
        VUSION,
        "        kernel.map_page(\n"
        "            process, vaddr, new_pfn, PteFlags.USER | PteFlags.WRITABLE\n"
        "        )",
        "        kernel.map_page(\n"
        "            process, vaddr, node_pfn, PteFlags.USER | PteFlags.WRITABLE\n"
        "        )",
        "FLOW003",
        id="vusion-copy-on-access-leaks-fresh-frame",
    ),
    pytest.param(
        BUDDY,
        "        pfn = self._pop_free(current)\n",
        "        pfn = self._pop_free(current)\n"
        "        if self.alloc_count < 0:\n"
        "            return -1\n",
        "FLOW003",
        id="buddy-alloc-early-return-leaks-pfn",
    ),
    pytest.param(
        TASK,
        "    return _run_selftest(spec, seed, attempt)",
        "    return {**_run_selftest(spec, seed, attempt), "
        "\"finished_at\": time.time()}",
        "FLOW004",
        id="execute-task-returns-wall-clock",
    ),
]


class TestMutantsAreCaught:
    @pytest.mark.parametrize("path, old, new, expected_rule", MUTANTS)
    def test_mutant_is_flagged_by_intended_rule(
        self, path, old, new, expected_rule
    ):
        mutant = mutate(path, old, new)
        findings = flow_findings(mutant, path)
        assert expected_rule in {f.rule_id for f in findings}, (
            f"mutant not caught; flow findings: "
            f"{[(f.rule_id, f.line, f.message) for f in findings]}"
        )

    @pytest.mark.parametrize("path, old, new, expected_rule", MUTANTS)
    def test_pristine_counterpart_is_clean(self, path, old, new, expected_rule):
        # The un-mutated file must not trip the rule the mutant trips —
        # otherwise the catch above proves nothing.
        source = path.read_text(encoding="utf-8")
        findings = flow_findings(source, path)
        assert findings == [], render_findings_short(findings)


def render_findings_short(findings) -> str:
    return "; ".join(
        f"{f.rule_id}@{f.path}:{f.line}: {f.message}" for f in findings
    )


# ----------------------------------------------------------------------
# Interprocedural mutants: whole-tree analysis, one file swapped out
# ----------------------------------------------------------------------
def ip_findings(path: pathlib.Path, source: str):
    sources = dict(base_sources())
    sources[str(path)] = source
    result = lint_project(sources, rule_ids=list(IP_IDS))
    assert result.errors == []
    return result.findings


IP_MUTANTS = [
    pytest.param(
        WPF,
        "        kernel.map_page(\n"
        "            process, vaddr, new_pfn, PteFlags.USER | "
        "PteFlags.WRITABLE\n"
        "        )",
        "        kernel.map_page(\n"
        "            process, vaddr, node_pfn, PteFlags.USER | "
        "PteFlags.WRITABLE\n"
        "        )",
        "FLOW003-ip",
        id="wpf-cow-maps-stale-node-instead-of-fresh-frame",
    ),
    pytest.param(
        WPF,
        "        new_pfn = self._alloc_unmerge_frame()\n",
        "        new_pfn = self._alloc_unmerge_frame()\n"
        "        _spare = self._alloc_unmerge_frame()\n",
        "FLOW003-ip",
        id="wpf-cow-allocates-spare-frame-never-consumed",
    ),
    pytest.param(
        WPF,
        "    def full_pass(self) -> None:",
        "    @escapes_frame\n    def full_pass(self) -> None:",
        "FLOW006",
        id="wpf-full-pass-false-escape-annotation",
    ),
    pytest.param(
        ARTIFACTS,
        "        return value.hex()",
        "        return hash(value)",
        "FLOW004-ip",
        id="artifacts-sanitize-hashes-bytes",
    ),
    pytest.param(
        ARTIFACTS,
        'allow_nan=False) + "\\n"',
        'allow_nan=False) + str(hash(value)) + "\\n"',
        "FLOW004-ip",
        id="artifacts-canonical-json-appends-salted-hash",
    ),
    pytest.param(
        TASK,
        "    result = EXPERIMENTS[spec.name].run(",
        "    EXPERIMENTS.pop(spec.name, None)\n"
        "    result = EXPERIMENTS[spec.name].run(",
        "FLOW005",
        id="task-worker-mutates-experiment-registry",
    ),
    pytest.param(
        VUSION,
        "        self.stats.merges += 1\n"
        "        self.stats.merge_frame_log.append(node.pfn)",
        "        self.stats.merges += 1\n"
        "        PteFlags.SCAN_EPOCH = vaddr\n"
        "        self.stats.merge_frame_log.append(node.pfn)",
        "FLOW005",
        id="vusion-merge-stamps-shared-class-attribute",
    ),
]


class TestInterproceduralMutantsAreCaught:
    @pytest.mark.parametrize("path, old, new, expected_rule", IP_MUTANTS)
    def test_mutant_is_flagged_by_intended_rule(
        self, path, old, new, expected_rule
    ):
        mutant = mutate(path, old, new)
        findings = ip_findings(path, mutant)
        hits = [f for f in findings if f.rule_id == expected_rule]
        assert hits, (
            f"mutant not caught; ip findings: "
            f"{[(f.rule_id, f.path, f.line, f.message) for f in findings]}"
        )
        if expected_rule == "FLOW005":
            # The finding must carry a call-chain witness from the
            # task entry point down to the offending write.
            assert any("execute_task" in f.message for f in hits)


class TestPristineTreeInterprocedural:
    def test_src_is_ip_clean(self):
        result = lint_project(base_sources(), rule_ids=list(IP_IDS))
        assert result.errors == []
        assert result.findings == [], render_findings(result)


class TestPristineTree:
    def test_src_is_flow_clean(self):
        result = lint_paths([str(SRC)], rule_ids=list(FLOW_IDS))
        assert result.errors == []
        assert result.findings == [], render_findings(result)

    def test_no_flow_suppressions_in_checked_packages(self):
        # The acceptance bar: the checked packages pass FLOW001-004 and
        # the interprocedural tier on their own merits, not via escape
        # hatches.
        pattern = re.compile(r"#\s*simlint:\s*disable=[^\n]*(FLOW\d+|all)")
        offenders = []
        for package in ("core", "fusion", "mem", "runner"):
            for path in sorted((SRC / "repro" / package).rglob("*.py")):
                for lineno, line in enumerate(
                    path.read_text(encoding="utf-8").splitlines(), start=1
                ):
                    if pattern.search(line):
                        offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert offenders == []
