"""Tests for the round-robin scan cursor and engine base plumbing."""

from __future__ import annotations

import pytest

from repro.errors import FusionError
from repro.fusion.base import FusionEngine, FusionStats, ScanCursor
from repro.kernel.kernel import Kernel
from repro.params import PAGE_SIZE

from tests.conftest import small_spec


class TestScanCursor:
    def make_setup(self, layout):
        """layout: list of page counts, one mergeable VMA per process."""
        kernel = Kernel(small_spec())
        vmas = []
        for index, pages in enumerate(layout):
            process = kernel.create_process(f"p{index}")
            vmas.append((process, process.mmap(pages, mergeable=True)))
        return kernel, vmas

    def test_empty_machine_yields_nothing(self):
        kernel = Kernel(small_spec())
        cursor = ScanCursor(kernel)
        assert cursor.next_pages(10) == []

    def test_registration_order_preserved(self):
        kernel, vmas = self.make_setup([2, 3])
        cursor = ScanCursor(kernel)
        batch = cursor.next_pages(5)
        owners = [process.name for process, _vma, _vaddr in batch]
        assert owners == ["p0", "p0", "p1", "p1", "p1"]

    def test_addresses_ascend_within_vma(self):
        kernel, vmas = self.make_setup([4])
        cursor = ScanCursor(kernel)
        batch = cursor.next_pages(4)
        addresses = [vaddr for _p, _v, vaddr in batch]
        process, vma = vmas[0]
        assert addresses == [vma.start + i * PAGE_SIZE for i in range(4)]

    def test_wraps_and_counts_full_scans(self):
        kernel, _vmas = self.make_setup([2, 2])
        cursor = ScanCursor(kernel)
        assert cursor.full_scans == 0
        cursor.next_pages(4)
        cursor.next_pages(1)  # triggers the wrap
        assert cursor.full_scans == 1

    def test_new_vmas_picked_up_on_rebuild(self):
        kernel, vmas = self.make_setup([1])
        cursor = ScanCursor(kernel)
        cursor.next_pages(1)
        late = kernel.create_process("late")
        late_vma = late.mmap(1, mergeable=True)
        batch = cursor.next_pages(2)
        assert any(vma is late_vma for _p, vma, _a in batch)

    def test_unmapped_vma_skipped(self):
        kernel, vmas = self.make_setup([2, 2])
        process, vma = vmas[0]
        cursor = ScanCursor(kernel)
        cursor.next_pages(1)
        process.munmap(vma)
        batch = cursor.next_pages(4)
        assert all(v is not vma for _p, v, _a in batch)

    def test_non_mergeable_ignored(self):
        kernel = Kernel(small_spec())
        process = kernel.create_process("p")
        process.mmap(4, mergeable=False)
        cursor = ScanCursor(kernel)
        assert cursor.next_pages(8) == []


class TestFusionEngineBase:
    class Minimal(FusionEngine):
        name = "minimal"

        def _register(self, kernel):
            pass

        def saved_frames(self):
            return 0

    def test_default_hooks_raise_or_noop(self):
        kernel = Kernel(small_spec())
        engine = self.Minimal()
        kernel.attach_fusion(engine)
        with pytest.raises(FusionError):
            engine.handle_reserved_fault(None, 0, None, None)
        with pytest.raises(FusionError):
            engine.handle_fused_write(None, 0, None)
        with pytest.raises(FusionError):
            engine.unmerge_for_collapse(None, 0)
        engine.on_fused_ref_drop(3)  # no-op
        assert not engine.release_frame(3)
        assert engine.sharing_pairs() == (0, 0)

    def test_double_attach_rejected(self):
        kernel = Kernel(small_spec())
        kernel.attach_fusion(self.Minimal())
        with pytest.raises(FusionError):
            kernel.attach_fusion(self.Minimal())

    def test_stats_dataclass_defaults(self):
        stats = FusionStats()
        assert stats.merges == 0
        assert stats.merge_frame_log == []
        # Each instance gets its own log.
        other = FusionStats()
        stats.merge_frame_log.append(1)
        assert other.merge_frame_log == []
