"""Tests for the round-robin scan cursor and engine base plumbing."""

from __future__ import annotations

import pytest

from repro.errors import FusionError, InvalidFrameError
from repro.fusion.base import FusionEngine, FusionStats, ScanCursor
from repro.kernel.kernel import Kernel
from repro.mem.content import ZERO_PAGE, tagged_content
from repro.mem.scankernel import BatchScanKernel, ScalarScanKernel
from repro.params import PAGE_SIZE

from tests.conftest import small_spec


class TestScanCursor:
    def make_setup(self, layout):
        """layout: list of page counts, one mergeable VMA per process."""
        kernel = Kernel(small_spec())
        vmas = []
        for index, pages in enumerate(layout):
            process = kernel.create_process(f"p{index}")
            vmas.append((process, process.mmap(pages, mergeable=True)))
        return kernel, vmas

    def test_empty_machine_yields_nothing(self):
        kernel = Kernel(small_spec())
        cursor = ScanCursor(kernel)
        assert cursor.next_pages(10) == []

    def test_registration_order_preserved(self):
        kernel, vmas = self.make_setup([2, 3])
        cursor = ScanCursor(kernel)
        batch = cursor.next_pages(5)
        owners = [process.name for process, _vma, _vaddr in batch]
        assert owners == ["p0", "p0", "p1", "p1", "p1"]

    def test_addresses_ascend_within_vma(self):
        kernel, vmas = self.make_setup([4])
        cursor = ScanCursor(kernel)
        batch = cursor.next_pages(4)
        addresses = [vaddr for _p, _v, vaddr in batch]
        process, vma = vmas[0]
        assert addresses == [vma.start + i * PAGE_SIZE for i in range(4)]

    def test_wraps_and_counts_full_scans(self):
        kernel, _vmas = self.make_setup([2, 2])
        cursor = ScanCursor(kernel)
        assert cursor.full_scans == 0
        cursor.next_pages(4)
        cursor.next_pages(1)  # triggers the wrap
        assert cursor.full_scans == 1

    def test_new_vmas_picked_up_on_rebuild(self):
        kernel, vmas = self.make_setup([1])
        cursor = ScanCursor(kernel)
        cursor.next_pages(1)
        late = kernel.create_process("late")
        late_vma = late.mmap(1, mergeable=True)
        batch = cursor.next_pages(2)
        assert any(vma is late_vma for _p, vma, _a in batch)

    def test_unmapped_vma_skipped(self):
        kernel, vmas = self.make_setup([2, 2])
        process, vma = vmas[0]
        cursor = ScanCursor(kernel)
        cursor.next_pages(1)
        process.munmap(vma)
        batch = cursor.next_pages(4)
        assert all(v is not vma for _p, v, _a in batch)

    def test_non_mergeable_ignored(self):
        kernel = Kernel(small_spec())
        process = kernel.create_process("p")
        process.mmap(4, mergeable=False)
        cursor = ScanCursor(kernel)
        assert cursor.next_pages(8) == []


class TestScanKernelBatches:
    """Cursor-produced batches through the scan kernel's primitives.

    The boundary shapes engines actually hand the kernel: nothing to
    scan, one frame, a memory of nothing but zeros, a batch spanning a
    cursor wrap (duplicate pfns inside one batch), and frames recycled
    to new owners between two batches.  Each case pins the batch
    kernel to the scalar reference on the same machine.
    """

    def make_setup(self, layout):
        kernel = Kernel(small_spec())
        vmas = []
        for index, pages in enumerate(layout):
            process = kernel.create_process(f"p{index}")
            vmas.append((process, process.mmap(pages, mergeable=True)))
        return kernel, vmas

    @staticmethod
    def pfns_for(batch):
        pfns = []
        for process, _vma, vaddr in batch:
            walk = process.address_space.page_table.walk(vaddr)
            if walk is not None:
                pfns.append(walk.pte.pfn)
        return pfns

    @staticmethod
    def kernels_for(physmem):
        return ScalarScanKernel(physmem), BatchScanKernel(physmem)

    @staticmethod
    def fill(process, vma, contents):
        for index, content in enumerate(contents):
            process.write(vma.start + index * PAGE_SIZE, content)

    def test_empty_batch_through_every_primitive(self):
        kernel = Kernel(small_spec())
        cursor = ScanCursor(kernel)
        pfns = self.pfns_for(cursor.next_pages(16))
        assert pfns == []
        for scan in self.kernels_for(kernel.physmem):
            assert scan.zero_frames(pfns) == []
            assert scan.group_by_content(pfns) == {}
            assert scan.digest_sweep(pfns) == []
            assert scan.generation_snapshot(pfns) == []
            assert scan.changed_since(pfns, []) == []
            assert scan.refcount_sum(pfns) == 0
            assert scan.any_fused(pfns) is False

    def test_single_frame_batch(self):
        kernel, vmas = self.make_setup([1])
        process, vma = vmas[0]
        self.fill(process, vma, [tagged_content("cursor", 1)])
        cursor = ScanCursor(kernel)
        pfns = self.pfns_for(cursor.next_pages(1))
        assert len(pfns) == 1
        scalar, batch = self.kernels_for(kernel.physmem)
        for scan in (scalar, batch):
            assert scan.zero_frames(pfns) == []
            assert list(scan.group_by_content(pfns).values()) == [[0]]
        assert scalar.digest_sweep(pfns) == batch.digest_sweep(pfns)
        assert scalar.refcount_sum(pfns) == batch.refcount_sum(pfns)

    def test_all_zero_memory_is_one_group(self):
        kernel, vmas = self.make_setup([3])
        process, vma = vmas[0]
        self.fill(process, vma, [ZERO_PAGE] * 3)
        cursor = ScanCursor(kernel)
        pfns = self.pfns_for(cursor.next_pages(3))
        assert len(pfns) == 3
        scalar, batch = self.kernels_for(kernel.physmem)
        for scan in (scalar, batch):
            assert scan.zero_frames(pfns) == pfns
            assert list(scan.group_by_content(pfns).values()) == [[0, 1, 2]]
        assert scalar.digest_sweep(pfns) == batch.digest_sweep(pfns)

    def test_cursor_wrap_mid_batch_duplicates_pfns(self):
        kernel, vmas = self.make_setup([2, 2])
        for index, (process, vma) in enumerate(vmas):
            self.fill(
                process,
                vma,
                [tagged_content("wrap", index), ZERO_PAGE],
            )
        cursor = ScanCursor(kernel)
        cursor.next_pages(1)  # offset the cursor into the round
        # Five pages from a four-page machine: the batch runs off the
        # end, wraps, and its first page comes around again inside the
        # same batch.
        batch_pages = cursor.next_pages(5)
        assert cursor.full_scans == 1
        pfns = self.pfns_for(batch_pages)
        assert len(pfns) == 5 and pfns[0] == pfns[4]
        scalar, batch = self.kernels_for(kernel.physmem)
        assert scalar.zero_frames(pfns) == batch.zero_frames(pfns)
        scalar_groups = list(scalar.group_by_content(pfns).values())
        assert scalar_groups == list(batch.group_by_content(pfns).values())
        # The duplicated pfn lands in one group with both its indices.
        assert [0, 4] in [
            [i for i in members if pfns[i] == pfns[0]]
            for members in scalar_groups
            if 0 in members
        ]
        assert scalar.digest_sweep(pfns) == batch.digest_sweep(pfns)

    def test_frames_retyped_between_batches(self):
        kernel, vmas = self.make_setup([2])
        process, vma = vmas[0]
        self.fill(
            process,
            vma,
            [tagged_content("retype", 1), tagged_content("retype", 2)],
        )
        cursor = ScanCursor(kernel)
        first = self.pfns_for(cursor.next_pages(2))
        scalar, batch = self.kernels_for(kernel.physmem)
        snapshot = scalar.generation_snapshot(first)
        assert snapshot == batch.generation_snapshot(first)
        # Tear the VMA down and stand up a new one: the frames go back
        # to the allocator and come out retyped under a new owner with
        # fresh content before the cursor's next batch.
        process.munmap(vma)
        fresh = process.mmap(2, mergeable=True)
        self.fill(
            process,
            fresh,
            [tagged_content("retype", 3), tagged_content("retype", 4)],
        )
        second = self.pfns_for(cursor.next_pages(2))
        changed_scalar = scalar.changed_since(first, snapshot)
        assert changed_scalar == batch.changed_since(first, snapshot)
        # Every old frame the new VMA recycled must read as changed.
        assert set(first) & set(second) <= set(changed_scalar)
        assert scalar.digest_sweep(second) == batch.digest_sweep(second)
        assert list(scalar.group_by_content(second).values()) == (
            list(batch.group_by_content(second).values())
        )

    def test_pfn_batch_handle_and_range_inputs(self):
        """One validated handle (or a bare range) feeds every primitive
        with answers identical to the plain-list calls."""
        kernel, vmas = self.make_setup([3])
        process, vma = vmas[0]
        self.fill(process, vma, [
            ZERO_PAGE, tagged_content("handle", 1), tagged_content("handle", 1),
        ])
        scalar, batch = self.kernels_for(kernel.physmem)
        pfns = self.pfns_for([
            (process, vma, vma.start + index * PAGE_SIZE) for index in range(3)
        ])
        whole = range(kernel.physmem.num_frames)
        for kern in (scalar, batch):
            for source in (pfns, whole):
                handle = kern.pfn_batch(source)
                reference = (
                    scalar.zero_frames(list(source)),
                    list(scalar.group_by_content(list(source)).values()),
                    scalar.generation_snapshot(list(source)),
                    scalar.digest_sweep(list(source)),
                    scalar.refcount_sum(list(source)),
                )
                assert (
                    kern.zero_frames(handle),
                    list(kern.group_by_content(handle).values()),
                    kern.generation_snapshot(handle),
                    kern.digest_sweep(handle),
                    kern.refcount_sum(handle),
                ) == reference
                snapshot = kern.generation_snapshot(handle)
                assert kern.changed_since(handle, snapshot) == []
        with pytest.raises(InvalidFrameError):
            batch.zero_frames(
                batch.pfn_batch(range(kernel.physmem.num_frames + 1))
            )


class TestFusionEngineBase:
    class Minimal(FusionEngine):
        name = "minimal"

        def _register(self, kernel):
            pass

        def saved_frames(self):
            return 0

    def test_default_hooks_raise_or_noop(self):
        kernel = Kernel(small_spec())
        engine = self.Minimal()
        kernel.attach_fusion(engine)
        with pytest.raises(FusionError):
            engine.handle_reserved_fault(None, 0, None, None)
        with pytest.raises(FusionError):
            engine.handle_fused_write(None, 0, None)
        with pytest.raises(FusionError):
            engine.unmerge_for_collapse(None, 0)
        engine.on_fused_ref_drop(3)  # no-op
        assert not engine.release_frame(3)
        assert engine.sharing_pairs() == (0, 0)

    def test_double_attach_rejected(self):
        kernel = Kernel(small_spec())
        kernel.attach_fusion(self.Minimal())
        with pytest.raises(FusionError):
            kernel.attach_fusion(self.Minimal())

    def test_stats_dataclass_defaults(self):
        stats = FusionStats()
        assert stats.merges == 0
        assert stats.merge_frame_log == []
        # Each instance gets its own log.
        other = FusionStats()
        stats.merge_frame_log.append(1)
        assert other.merge_frame_log == []
