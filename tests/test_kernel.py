"""Integration tests for the kernel: demand paging, CoW, THP, timing."""

from __future__ import annotations

import pytest

from repro.errors import ProtectionFault, SegmentationFault
from repro.kernel.kernel import Kernel, ZERO_FRAME
from repro.mem.content import tagged_content
from repro.mem.physmem import FrameType
from repro.params import MachineSpec, PAGE_SIZE, PAGES_PER_HUGE_PAGE, SECOND

from tests.conftest import small_spec


class TestDemandPaging:
    def test_read_of_untouched_anon_is_zero(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(4)
        result = proc.read(vma.start)
        assert result.content == b""
        assert "demand" in result.fault_kinds
        # Read faults map the shared zero frame.
        walk = proc.address_space.page_table.walk(vma.start)
        assert walk.pfn == ZERO_FRAME
        assert not walk.pte.writable

    def test_write_allocates_private_frame(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(4)
        proc.write(vma.start, b"data")
        walk = proc.address_space.page_table.walk(vma.start)
        assert walk.pfn != ZERO_FRAME
        assert walk.pte.writable
        assert kernel.physmem.frame_type(walk.pfn) is FrameType.ANON
        assert proc.read(vma.start).content == b"data"

    def test_write_after_zero_read_cows(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(1)
        proc.read(vma.start)
        result = proc.write(vma.start, b"x")
        assert "cow" in result.fault_kinds
        assert proc.read(vma.start).content == b"x"
        # The zero frame itself must never be dirtied.
        assert kernel.physmem.read(ZERO_FRAME) == b""

    def test_unmapped_address_segfaults(self, kernel):
        proc = kernel.create_process("p")
        with pytest.raises(SegmentationFault):
            proc.read(0x999_0000)

    def test_second_access_no_fault(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(1)
        proc.write(vma.start, b"a")
        result = proc.read(vma.start)
        assert result.fault_kinds == ()

    def test_file_backed_pages_deterministic(self, kernel):
        proc = kernel.create_process("p")
        proc.file_store.register_file("etc", 4)
        vma = proc.mmap(4, file_key="etc")
        first = proc.read(vma.start + PAGE_SIZE).content
        assert first == proc.file_store.page_content("etc", 1)
        walk = proc.address_space.page_table.walk(vma.start + PAGE_SIZE)
        assert kernel.physmem.frame_type(walk.pfn) is FrameType.PAGE_CACHE

    def test_file_page_write_cows(self, kernel):
        proc = kernel.create_process("p")
        proc.file_store.register_file("etc", 1)
        vma = proc.mmap(1, file_key="etc")
        proc.read(vma.start)
        result = proc.write(vma.start, b"private")
        assert "cow" in result.fault_kinds
        assert proc.read(vma.start).content == b"private"


class TestTiming:
    def test_fault_much_slower_than_hit(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(2)
        cold = proc.write(vma.start, b"a").latency
        warm = proc.time_read(vma.start)
        assert cold > 5 * warm

    def test_tlb_hit_faster_than_walk(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(1)
        proc.write(vma.start, b"a")
        proc.read(vma.start)
        hit = proc.read(vma.start)
        assert hit.tlb_hit
        proc.tlb.flush()
        miss = proc.read(vma.start)
        assert not miss.tlb_hit
        assert miss.latency > hit.latency

    def test_llc_hit_faster_than_dram(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(1)
        proc.write(vma.start, b"a")
        proc.read(vma.start)
        fast = proc.read(vma.start)
        assert fast.llc_hit
        kernel.llc.flush_frame(
            proc.address_space.page_table.walk(vma.start).pfn
        )
        slow = proc.read(vma.start)
        assert not slow.llc_hit
        assert slow.latency > fast.latency

    def test_clock_monotonic(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(8)
        t0 = kernel.clock.now
        for index in range(8):
            proc.write(vma.start + index * PAGE_SIZE, b"x")
        assert kernel.clock.now > t0


class TestMunmap:
    def test_frames_released(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(16)
        for index in range(16):
            proc.write(vma.start + index * PAGE_SIZE, tagged_content("m", index))
        used_before = kernel.frames_in_use()
        proc.munmap(vma)
        assert kernel.frames_in_use() == used_before - 16
        with pytest.raises(SegmentationFault):
            proc.read(vma.start)

    def test_zero_frame_survives_munmap(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(4)
        for index in range(4):
            proc.read(vma.start + index * PAGE_SIZE)
        proc.munmap(vma)
        assert kernel.physmem.refcount(ZERO_FRAME) == 1  # the boot pin

    def test_shared_file_content_refetched(self, kernel):
        proc = kernel.create_process("p")
        proc.file_store.register_file("f", 2)
        vma = proc.mmap(2, file_key="f")
        first = proc.read(vma.start).content
        kernel.invalidate_file_pages(proc, vma)
        proc.file_store.rewrite_file("f")
        second = proc.read(vma.start).content
        assert first != second


class TestThpFault:
    def test_huge_allocation_on_write(self, kernel_thp):
        proc = kernel_thp.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        result = proc.write(vma.start, b"x")
        assert "demand" in result.fault_kinds
        walk = proc.address_space.page_table.walk(vma.start)
        assert walk.huge
        assert walk.levels_walked == 3
        assert kernel_thp.stats.thp_fault_allocs == 1
        # All 512 subframes are refcounted and rmapped.
        head = walk.pfn
        assert head % PAGES_PER_HUGE_PAGE == 0
        assert kernel_thp.physmem.refcount(head + 100) == 1

    def test_subpage_contents_independent(self, kernel_thp):
        proc = kernel_thp.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        proc.write(vma.start, b"first")
        proc.write(vma.start + 7 * PAGE_SIZE, b"seventh")
        assert proc.read(vma.start).content == b"first"
        assert proc.read(vma.start + 7 * PAGE_SIZE).content == b"seventh"

    def test_split_preserves_contents(self, kernel_thp):
        proc = kernel_thp.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        proc.write(vma.start, b"x")
        proc.write(vma.start + 5 * PAGE_SIZE, b"five")
        kernel_thp.split_huge_mapping(proc, vma.start)
        walk = proc.address_space.page_table.walk(vma.start + 5 * PAGE_SIZE)
        assert not walk.huge
        assert proc.read(vma.start + 5 * PAGE_SIZE).content == b"five"

    def test_munmap_huge_returns_all_frames(self, kernel_thp):
        proc = kernel_thp.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        proc.write(vma.start, b"x")
        used = kernel_thp.frames_in_use()
        proc.munmap(vma)
        assert kernel_thp.frames_in_use() == used - PAGES_PER_HUGE_PAGE

    def test_small_vma_never_huge(self, kernel_thp):
        proc = kernel_thp.create_process("p")
        vma = proc.mmap(8)
        proc.write(vma.start, b"x")
        walk = proc.address_space.page_table.walk(vma.start)
        assert not walk.huge


class TestProtection:
    def test_write_to_readonly_nonCow_raises(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(1)
        proc.write(vma.start, b"a")
        walk = proc.address_space.page_table.walk(vma.start)
        walk.pte.clear(walk.pte.flags.__class__.WRITABLE)
        walk.pte.clear(walk.pte.flags.__class__.COW)
        proc.tlb.flush()
        with pytest.raises(ProtectionFault):
            proc.write(vma.start, b"b")


class TestDaemonsAndIdle:
    def test_idle_runs_daemons(self, kernel):
        runs = []
        kernel.register_daemon("t", SECOND, lambda: runs.append(kernel.clock.now))
        kernel.idle(5 * SECOND)
        assert len(runs) == 5

    def test_access_triggers_due_daemon(self, kernel):
        runs = []
        kernel.register_daemon("t", SECOND, lambda: runs.append(1))
        kernel.clock.advance(3 * SECOND)
        proc = kernel.create_process("p")
        vma = proc.mmap(1)
        proc.read(vma.start)
        assert runs  # ran at least once when the access arrived


class TestRefcountInvariant:
    def test_refcounts_match_rmap(self, kernel):
        """Every mapped frame's refcount equals its rmap entry count
        (+1 for the pinned zero frame)."""
        procs = [kernel.create_process(f"p{i}") for i in range(3)]
        for proc in procs:
            vma = proc.mmap(8)
            for index in range(0, 8, 2):
                proc.write(vma.start + index * PAGE_SIZE, tagged_content("rc", index))
            for index in range(1, 8, 2):
                proc.read(vma.start + index * PAGE_SIZE)
        for pfn in kernel.physmem.mapped_frames():
            expected = len(kernel.physmem.rmap(pfn))
            if pfn == ZERO_FRAME:
                expected += 1
            assert kernel.physmem.refcount(pfn) == expected
