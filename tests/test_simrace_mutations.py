"""Mutation meta-test for the simrace tier.

Each case plants one realistic concurrency bug into the *real* runner
and harness sources (``pool.py``, ``task.py``, ``fleet.py``) and
asserts the intended RACE rule catches it.  Every case lints the whole
``src`` tree with the mutated file swapped in, because the race tier's
concurrency model (spawn sites, worker reachability) is project-wide.
The dual is pinned too: the pristine tree must be race-clean with zero
RACE suppressions in ``src/repro/runner`` — the parallel-execution
code passes on its own merits, not via escape hatches.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.check import lint_project, render_findings

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
POOL = SRC / "repro" / "runner" / "pool.py"
TASK = SRC / "repro" / "runner" / "task.py"
FLEET = SRC / "repro" / "harness" / "fleet.py"

RACE_IDS = ("RACE001", "RACE002", "RACE003", "RACE004")

_BASE_SOURCES: dict[str, str] | None = None


def base_sources() -> dict[str, str]:
    """The pristine ``src`` tree, read once per test session."""
    global _BASE_SOURCES
    if _BASE_SOURCES is None:
        _BASE_SOURCES = {
            str(path): path.read_text(encoding="utf-8")
            for path in sorted(SRC.rglob("*.py"))
        }
    return _BASE_SOURCES


def mutate(path: pathlib.Path, edits: list[tuple[str, str]]) -> str:
    """Apply one bug's edits to a real source file; anchors must be
    unique so the meta-test fails loudly when the code moves."""
    source = path.read_text(encoding="utf-8")
    for old, new in edits:
        occurrences = source.count(old)
        assert occurrences == 1, (
            f"mutation anchor matched {occurrences}x in {path.name}; the "
            f"meta-test needs updating: {old!r}"
        )
        source = source.replace(old, new, 1)
    return source


def race_findings(path: pathlib.Path, source: str):
    sources = dict(base_sources())
    sources[str(path)] = source
    result = lint_project(sources, rule_ids=list(RACE_IDS))
    assert result.errors == []
    return result.findings


MUTANTS = [
    # -- RACE001: parent writes a payload after hand-off ---------------
    pytest.param(
        POOL,
        [(
            "        process = ctx.Process(\n"
            "            target=_worker_main,\n"
            "            args=(child_conn, self.tasks[index], "
            "self.seeds[index], attempt,\n"
            "                  self.config.shard_workers),\n"
            "            daemon=True,\n"
            "        )\n"
            "        process.start()\n",
            "        payload = [child_conn, self.tasks[index], "
            "self.seeds[index], attempt,\n"
            "                   self.config.shard_workers]\n"
            "        process = ctx.Process(\n"
            "            target=_worker_main,\n"
            "            args=payload,\n"
            "            daemon=True,\n"
            "        )\n"
            "        process.start()\n"
            "        payload.append(time.monotonic())\n",
        )],
        "RACE001",
        id="pool-start-mutates-spawn-payload-after-start",
    ),
    pytest.param(
        TASK,
        [(
            "        params = dict(env_overrides)\n"
            "        params[\"target\"] = resolved\n"
            "        return cls(kind=\"attack\", name=name, "
            "params=_freeze(params), seed=seed)",
            "        params = dict(env_overrides)\n"
            "        spec = cls(kind=\"attack\", name=name, "
            "params=_freeze(params), seed=seed)\n"
            "        params[\"target\"] = resolved\n"
            "        return spec",
        )],
        "RACE001",
        id="task-attack-writes-params-after-spec-construction",
    ),
    # -- RACE002: unordered completion order reaches a reduction -------
    pytest.param(
        POOL,
        [(
            "        results = [result for result in self._results "
            "if result is not None]\n",
            "        completed = {result for result in self._results "
            "if result is not None}\n"
            "        results = list(completed)\n",
        )],
        "RACE002",
        id="pool-run-freezes-results-through-a-set",
    ),
    pytest.param(
        FLEET,
        [(
            "            \"daemon_ns\": {name: kernel.stats.daemon_ns[name]\n"
            "                          for name in "
            "sorted(kernel.stats.daemon_ns)},",
            "            \"daemon_ns\": {name: kernel.stats.daemon_ns[name]\n"
            "                          for name in "
            "set(kernel.stats.daemon_ns)},",
        )],
        "RACE002",
        id="fleet-finalize-drops-daemon-ns-sort-key",
    ),
    # -- RACE003: undeclared worker reads of fork-inherited state ------
    pytest.param(
        TASK,
        [
            (
                "#: Task kinds understood by :func:`execute_task`.\n",
                "#: Task kinds understood by :func:`execute_task`.\n"
                "_RESULT_CACHE: dict = {}\n",
            ),
            (
                "    if spec.kind == \"experiment\":\n"
                "        return _run_experiment(spec, seed)\n",
                "    cached = _RESULT_CACHE.get(spec.task_id)\n"
                "    if cached is not None:\n"
                "        return cached\n"
                "    if spec.kind == \"experiment\":\n"
                "        return _run_experiment(spec, seed)\n",
            ),
        ],
        "RACE003",
        id="task-execute-reads-undeclared-module-cache",
    ),
    pytest.param(
        FLEET,
        [
            (
                "def generate_plan(spec: ScenarioSpec) -> list[VmPlan]:",
                "_PLAN_CACHE: dict = {}\n\n\n"
                "def generate_plan(spec: ScenarioSpec) -> list[VmPlan]:",
            ),
            (
                "    fleet = spec.fleet\n"
                "    rng = random.Random(spec.derived_seed(\"plan\"))\n",
                "    fleet = spec.fleet\n"
                "    cached = _PLAN_CACHE.get(spec.derived_seed(\"plan\"))\n"
                "    if cached is not None:\n"
                "        return cached\n"
                "    rng = random.Random(spec.derived_seed(\"plan\"))\n",
            ),
        ],
        "RACE003",
        id="fleet-generate-plan-reads-undeclared-module-cache",
    ),
    # -- RACE004: hazardous values on the pickle boundary --------------
    pytest.param(
        POOL,
        [(
            "        payload = execute_task(spec, seed, attempt=attempt,\n"
            "                               shard_workers=shard_workers)\n"
            "        conn.send((\"ok\", payload, None))\n",
            "        payload = execute_task(spec, seed, attempt=attempt,\n"
            "                               shard_workers=shard_workers)\n"
            "        trace = open(\"/dev/null\", \"w\")\n"
            "        conn.send((\"ok\", payload, trace))\n",
        )],
        "RACE004",
        id="pool-worker-ships-open-handle-through-pipe",
    ),
    pytest.param(
        POOL,
        [(
            "            target=_worker_main,\n"
            "            args=(child_conn, self.tasks[index], "
            "self.seeds[index], attempt,\n"
            "                  self.config.shard_workers),\n",
            "            target=lambda: _worker_main(\n"
            "                child_conn, self.tasks[index], "
            "self.seeds[index], attempt,\n"
            "                self.config.shard_workers\n"
            "            ),\n",
        )],
        "RACE004",
        id="pool-spawn-targets-a-lambda",
    ),
    pytest.param(
        TASK,
        [(
            "def _freeze(params: dict) -> tuple:\n"
            "    return tuple(sorted(params.items()))\n",
            "def _freeze(params: dict) -> tuple:\n"
            "    return tuple(set(params.items()))\n",
        )],
        "RACE004",
        id="task-freeze-returns-set-ordered-params",
    ),
]


class TestMutantsAreCaught:
    @pytest.mark.parametrize("path, edits, expected_rule", MUTANTS)
    def test_mutant_is_flagged_by_intended_rule(
        self, path, edits, expected_rule
    ):
        mutant = mutate(path, edits)
        findings = race_findings(path, mutant)
        hits = [f for f in findings if f.rule_id == expected_rule]
        assert hits, (
            f"mutant not caught; race findings: "
            f"{[(f.rule_id, f.path, f.line, f.message) for f in findings]}"
        )
        if expected_rule == "RACE003":
            # An undeclared read must name the owning binding and carry
            # a witness chain from a worker root.
            assert any("OWNERSHIP_FACTS" in f.message for f in hits)
            assert any("[" in f.message for f in hits)

    def test_freeze_mutant_reports_the_laundering_chain(self):
        # The set() is hidden inside _freeze(); the finding must land on
        # the TaskSpec construction site with _freeze in the witness.
        mutant = mutate(TASK, [(
            "def _freeze(params: dict) -> tuple:\n"
            "    return tuple(sorted(params.items()))\n",
            "def _freeze(params: dict) -> tuple:\n"
            "    return tuple(set(params.items()))\n",
        )])
        findings = race_findings(TASK, mutant)
        hits = [f for f in findings if f.rule_id == "RACE004"]
        assert any("_freeze" in f.message for f in hits)


class TestPristineTree:
    def test_src_is_race_clean(self):
        result = lint_project(base_sources(), rule_ids=list(RACE_IDS))
        assert result.errors == []
        assert result.findings == [], render_findings(result)

    def test_no_race_suppressions_in_runner(self):
        # The acceptance bar: the parallel-execution code is race-clean
        # on its own merits.
        pattern = re.compile(r"#\s*simlint:\s*disable=[^\n]*(RACE\d+|all)")
        offenders = []
        for path in sorted((SRC / "repro" / "runner").rglob("*.py")):
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if pattern.search(line):
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert offenders == []
