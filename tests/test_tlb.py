"""Unit tests for the set-associative TLB."""

from __future__ import annotations

from repro.mmu.tlb import Tlb
from repro.params import TlbGeometry


def make_tlb(entries=16, ways=4) -> Tlb:
    return Tlb(TlbGeometry(entries=entries, ways=ways))


class TestLookupInsert:
    def test_miss_then_hit(self):
        tlb = make_tlb()
        assert not tlb.lookup(5, False)
        tlb.insert(5, False)
        assert tlb.lookup(5, False)

    def test_hit_miss_counters(self):
        tlb = make_tlb()
        tlb.lookup(1, False)
        tlb.insert(1, False)
        tlb.lookup(1, False)
        assert tlb.misses == 1
        assert tlb.hits == 1

    def test_huge_and_small_distinct(self):
        tlb = make_tlb()
        tlb.insert(3, False)
        assert not tlb.lookup(3, True)

    def test_lru_eviction_within_set(self):
        tlb = make_tlb(entries=8, ways=2)  # 4 sets
        set_stride = 4
        tlb.insert(0, False)
        tlb.insert(set_stride, False)
        tlb.insert(2 * set_stride, False)  # evicts vpn 0
        assert not tlb.lookup(0, False)
        assert tlb.lookup(set_stride, False)

    def test_reinsert_refreshes_lru(self):
        tlb = make_tlb(entries=8, ways=2)
        stride = 4
        tlb.insert(0, False)
        tlb.insert(stride, False)
        tlb.insert(0, False)  # refresh
        tlb.insert(2 * stride, False)  # evicts vpn stride
        assert tlb.lookup(0, False)
        assert not tlb.lookup(stride, False)


class TestInvalidation:
    def test_invalidate_page_removes_small(self):
        tlb = make_tlb()
        tlb.insert(7, False)
        tlb.invalidate_page(7)
        assert not tlb.lookup(7, False)

    def test_invalidate_page_removes_covering_huge(self):
        tlb = make_tlb()
        huge_vpn = 3
        tlb.insert(huge_vpn, True)
        # Any 4 KiB page inside the huge mapping invalidates it.
        tlb.invalidate_page((huge_vpn << 9) | 17)
        assert not tlb.lookup(huge_vpn, True)

    def test_flush_clears_everything(self):
        tlb = make_tlb()
        for vpn in range(10):
            tlb.insert(vpn, False)
        tlb.flush()
        assert tlb.occupancy() == 0
