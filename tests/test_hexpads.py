"""Tests for the HexPADS comparison (§10.2).

The paper's argument: anomaly detection can be tuned around (false
negatives) and misfires on honest bursts (false positives), while
VUsion removes the channel outright.  All three claims are exercised.
"""

from __future__ import annotations

from repro.attacks.base import AttackEnvironment
from repro.attacks.primitives import calibrate_write_baseline
from repro.defenses.hexpads import HexPadsConfig, HexPadsDetector
from repro.mem.content import tagged_content
from repro.params import MS, PAGE_SIZE, SECOND


def build_env_with_detector(engine="ksm", threshold=16):
    env = AttackEnvironment(engine)
    detector = HexPadsDetector(
        env.kernel, HexPadsConfig(window_ns=SECOND, cow_threshold=threshold)
    )
    return env, detector


def plant_candidates(env, count, tag="hx"):
    """Attacker guesses + victim secrets, fused after a few rounds."""
    secret_of = lambda i: tagged_content(tag, i)
    guesses = env.attacker.mmap(count, name="hx-guess", mergeable=True)
    victim_vma = env.victim.mmap(count, name="hx-secret", mergeable=True)
    for index in range(count):
        env.attacker.write(guesses.start + index * PAGE_SIZE, secret_of(index))
        env.victim.write(victim_vma.start + index * PAGE_SIZE, secret_of(index))
    env.wait_for_fusion(passes=3)
    return guesses


class TestDetection:
    def test_greedy_attacker_flagged(self):
        env, detector = build_env_with_detector(threshold=16)
        guesses = plant_candidates(env, 32)
        # The attacker probes all candidates back-to-back: a CoW burst.
        for index in range(32):
            env.attacker.rewrite(guesses.start + index * PAGE_SIZE)
        env.kernel.idle(2 * SECOND)  # close the window
        assert detector.is_flagged(env.attacker)

    def test_idle_system_not_flagged(self):
        env, detector = build_env_with_detector()
        plant_candidates(env, 8)
        env.kernel.idle(3 * SECOND)
        assert not detector.flagged

    def test_false_positive_on_honest_burst(self):
        """A victim legitimately rewriting its own fused pages trips
        the detector — the paper's false-positive criticism."""
        env, detector = build_env_with_detector(threshold=16)
        plant_candidates(env, 32)
        victim_vma = env.victim.address_space.vmas[-1]
        for vaddr in victim_vma.pages():
            env.victim.write(vaddr, b"honest update")
        env.kernel.idle(2 * SECOND)
        assert detector.is_flagged(env.victim)


class TestEvasion:
    def test_rate_limited_attacker_leaks_undetected(self):
        """The paper's false-negative criticism: stay under the window
        threshold and the full secret still leaks, slowly."""
        env, detector = build_env_with_detector(threshold=16)
        count = 24
        guesses = plant_candidates(env, count)
        baseline = calibrate_write_baseline(env.attacker)
        leaked = 0
        for index in range(count):
            # Probe a handful of candidates per detection window.
            latency = env.attacker.rewrite(
                guesses.start + index * PAGE_SIZE
            ).latency
            if latency > 3 * baseline:
                leaked += 1
            if (index + 1) % 8 == 0:
                env.kernel.idle(1200 * MS)  # let the window close
        env.kernel.idle(2 * SECOND)
        assert leaked == count, "the side channel still works"
        assert not detector.is_flagged(env.attacker), "and went unnoticed"

    def test_vusion_needs_no_detector(self):
        """Under VUsion even the greedy attacker learns nothing —
        there is no anomaly left to detect, and no channel either."""
        env, detector = build_env_with_detector(engine="vusion", threshold=10**9)
        count = 16
        guesses = plant_candidates(env, count)
        wrong = env.attacker.mmap(count, name="hx-wrong", mergeable=True)
        for index in range(count):
            env.attacker.write(
                wrong.start + index * PAGE_SIZE, tagged_content("hx-w", index)
            )
        env.wait_for_fusion(passes=3)
        slow_correct = slow_wrong = 0
        baseline = calibrate_write_baseline(env.attacker)
        for index in range(count):
            if env.attacker.rewrite(guesses.start + index * PAGE_SIZE).latency > 3 * baseline:
                slow_correct += 1
            if env.attacker.rewrite(wrong.start + index * PAGE_SIZE).latency > 3 * baseline:
                slow_wrong += 1
        assert slow_correct == slow_wrong  # indistinguishable
