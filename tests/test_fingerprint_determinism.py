"""The fingerprint cache must be invisible to the simulation.

Same seed, same workload ⇒ byte-identical trace event stream, clock,
fusion statistics and memory accounting whether the fingerprint engine
is on or off.  This is the binding contract that lets the optimisation
exist at all: it may remove *Python* work (hashing, tree re-walks) but
never a simulated charge or a behavioural branch — otherwise every
figure in the reproduction would silently depend on a cache flag.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro.core.vusion import Vusion
from repro.fusion.cow_ksm import CopyOnAccessKsm
from repro.fusion.ksm import Ksm
from repro.fusion.memory_combining import MemoryCombining
from repro.fusion.wpf import WindowsPageFusion
from repro.kernel.kernel import Kernel
from repro.mem.content import tagged_content
from repro.params import (
    FusionConfig,
    MachineSpec,
    MS,
    PAGE_SIZE,
    SECOND,
    VusionConfig,
    WpfConfig,
)

FAST = FusionConfig(pages_per_scan=64, scan_interval=20 * MS)

ENGINES = {
    "ksm": lambda: Ksm(FAST),
    "coa-ksm": lambda: CopyOnAccessKsm(FAST),
    "wpf": lambda: WindowsPageFusion(WpfConfig(pass_interval=100 * MS)),
    "vusion": lambda: Vusion(
        VusionConfig(random_pool_frames=128, min_idle_ns=50 * MS), FAST
    ),
    "vusion-no-rerand": lambda: Vusion(
        VusionConfig(
            random_pool_frames=128,
            min_idle_ns=50 * MS,
            rerandomize_each_scan=False,
        ),
        FAST,
    ),
    "memory-combining": lambda: MemoryCombining(FAST, swap_after_ns=100 * MS),
}


def run_workload(engine_name: str, fingerprint_enabled: bool) -> dict:
    """Run a seeded mixed workload; return every observable output."""
    spec = MachineSpec(
        total_frames=2048, seed=1017, fingerprint_enabled=fingerprint_enabled
    )
    kernel = Kernel(spec)
    kernel.tracepoints.record(capacity=200_000)
    engine = ENGINES[engine_name]()
    kernel.attach_fusion(engine)

    rng = random.Random(42)
    processes = [kernel.create_process(f"p{i}") for i in range(3)]
    vmas = [p.mmap(12, mergeable=True) for p in processes]
    for process, vma in zip(processes, vmas):
        for index in range(12):
            process.write(
                vma.start + index * PAGE_SIZE, tagged_content("det", index % 5)
            )
    kernel.idle(300 * MS)  # let merges happen
    for _ in range(40):
        proc_index = rng.randrange(3)
        page_index = rng.randrange(12)
        vaddr = vmas[proc_index].start + page_index * PAGE_SIZE
        op = rng.random()
        if op < 0.4:
            processes[proc_index].write(
                vaddr, tagged_content("det2", rng.randrange(6))
            )
        elif op < 0.8:
            processes[proc_index].read(vaddr)
        else:
            kernel.idle(rng.randrange(1, 4) * 25 * MS)
    kernel.idle(SECOND)

    stats = dataclasses.asdict(engine.stats)
    kstats = dataclasses.asdict(kernel.stats)
    return {
        "clock": kernel.clock.now,
        "trace": [
            (e.t_ns, e.name, tuple(sorted(e.fields.items())))
            for e in kernel.tracepoints.events()
        ],
        "fusion_stats": stats,
        "kernel_stats": kstats,
        "frames_in_use": kernel.frames_in_use(),
        "saved_frames": engine.saved_frames(),
    }


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_trace_and_stats_identical_with_cache_on_and_off(engine_name):
    on = run_workload(engine_name, fingerprint_enabled=True)
    off = run_workload(engine_name, fingerprint_enabled=False)
    assert on["clock"] == off["clock"]
    assert on["trace"] == off["trace"]
    assert on["fusion_stats"] == off["fusion_stats"]
    assert on["kernel_stats"] == off["kernel_stats"]
    assert on["frames_in_use"] == off["frames_in_use"]
    assert on["saved_frames"] == off["saved_frames"]


def test_same_seed_same_run_is_reproducible():
    """Sanity: two identical cache-on runs are themselves identical."""
    first = run_workload("vusion", fingerprint_enabled=True)
    second = run_workload("vusion", fingerprint_enabled=True)
    assert first == second


def test_replay_counters_stay_out_of_fusion_stats():
    """Replay bookkeeping must not leak into deterministic statistics."""
    result = run_workload("ksm", fingerprint_enabled=True)
    for key in result["fusion_stats"]:
        assert "replay" not in key and "fingerprint" not in key
