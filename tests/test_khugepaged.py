"""Tests for khugepaged: insecure default vs. VUsion-secured policy."""

from __future__ import annotations

from repro.core.vusion import Vusion
from repro.fusion.ksm import Ksm
from repro.kernel.kernel import Kernel
from repro.kernel.khugepaged import Khugepaged
from repro.params import (
    FusionConfig,
    MS,
    PAGE_SIZE,
    PAGES_PER_HUGE_PAGE,
    SECOND,
    VusionConfig,
)

from tests.conftest import dup, small_spec


def populate_range(process, vma, count=PAGES_PER_HUGE_PAGE, tag="kh"):
    for index in range(count):
        process.write_page(vma, index, dup(tag, index))


class TestInsecureCollapse:
    def test_collapses_full_range(self):
        kernel = Kernel(small_spec(frames=16384))
        khugepaged = Khugepaged(kernel, period=SECOND)
        proc = kernel.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        populate_range(proc, vma)
        assert not proc.address_space.page_table.walk(vma.start).huge
        kernel.idle(2 * SECOND)
        walk = proc.address_space.page_table.walk(vma.start)
        assert walk.huge
        assert khugepaged.collapses == 1

    def test_contents_preserved_across_collapse(self):
        kernel = Kernel(small_spec(frames=16384))
        Khugepaged(kernel, period=SECOND)
        proc = kernel.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        populate_range(proc, vma, tag="content")
        kernel.idle(2 * SECOND)
        for index in range(0, PAGES_PER_HUGE_PAGE, 61):
            assert proc.read_page(vma, index) == dup("content", index)

    def test_underpopulated_range_not_collapsed(self):
        kernel = Kernel(small_spec(frames=16384))
        khugepaged = Khugepaged(kernel, period=SECOND)
        proc = kernel.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        populate_range(proc, vma, count=64)  # way below min_present
        kernel.idle(2 * SECOND)
        assert khugepaged.collapses == 0

    def test_holes_zero_filled(self):
        kernel = Kernel(small_spec(frames=16384))
        Khugepaged(kernel, period=SECOND, min_present=400)
        proc = kernel.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        populate_range(proc, vma, count=480)
        kernel.idle(2 * SECOND)
        assert proc.address_space.page_table.walk(vma.start).huge
        assert proc.read_page(vma, 500) == b""

    def test_skips_ranges_with_fused_pages(self):
        """Linux khugepaged refuses to collapse over KSM pages."""
        kernel = Kernel(small_spec(frames=16384))
        ksm = Ksm(FusionConfig(pages_per_scan=2048, scan_interval=20 * MS))
        kernel.attach_fusion(ksm)
        khugepaged = Khugepaged(kernel, period=SECOND)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        vma = a.mmap(PAGES_PER_HUGE_PAGE, mergeable=True)
        populate_range(a, vma)
        other = b.mmap(1, mergeable=True, thp_allowed=False)
        b.write_page(other, 0, dup("kh", 3))  # duplicates page 3
        kernel.idle(5 * SECOND)
        assert ksm.stats.merges >= 1
        assert not a.address_space.page_table.walk(vma.start).huge
        assert khugepaged.skipped_fused > 0

    def test_file_backed_not_collapsed(self):
        kernel = Kernel(small_spec(frames=16384))
        khugepaged = Khugepaged(kernel, period=SECOND)
        proc = kernel.create_process("p")
        proc.file_store.register_file("f", PAGES_PER_HUGE_PAGE)
        vma = proc.mmap(PAGES_PER_HUGE_PAGE, file_key="f")
        for index in range(PAGES_PER_HUGE_PAGE):
            proc.read(vma.start + index * PAGE_SIZE)
        kernel.idle(2 * SECOND)
        assert khugepaged.collapses == 0


class TestSecureCollapse:
    def make_setup(self, threshold=1):
        kernel = Kernel(small_spec(frames=32768))
        # The secure khugepaged is part of the "VUsion THP" system, so
        # the engine runs in THP-conserving mode here.
        vu = Vusion(
            VusionConfig(random_pool_frames=512, thp_enabled=True),
            FusionConfig(pages_per_scan=1024, scan_interval=20 * MS),
        )
        kernel.attach_fusion(vu)
        khugepaged = Khugepaged(
            kernel, period=SECOND, secure=True, active_threshold=threshold
        )
        return kernel, vu, khugepaged

    def test_idle_range_not_collapsed(self):
        kernel, vu, khugepaged = self.make_setup()
        proc = kernel.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE, mergeable=True)
        populate_range(proc, vma)
        # Let the pages go idle, then give khugepaged several chances.
        kernel.idle(5 * SECOND)
        assert khugepaged.collapses == 0
        assert khugepaged.skipped_inactive > 0

    def test_active_range_collapsed_after_unmerging(self):
        kernel, vu, khugepaged = self.make_setup()
        proc = kernel.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE, mergeable=True)
        populate_range(proc, vma)
        # Go idle long enough for VUsion to (fake-)merge everything.
        kernel.idle(4 * SECOND)
        fused = sum(
            1
            for vaddr in vma.pages()
            if proc.address_space.page_table.walk(vaddr).pte.fused
        )
        assert fused > 400
        # Now the range becomes hot again (and stays hot while
        # khugepaged gets several chances to run).
        for _ in range(80):
            proc.read_page(vma, 5)
            kernel.idle(40 * MS)
        walk = proc.address_space.page_table.walk(vma.start)
        assert walk.huge, "active range must be re-collapsed securely"
        # Content intact after unmerge-then-collapse.
        assert proc.read_page(vma, 5) == dup("kh", 5)
        assert proc.read_page(vma, 300) == dup("kh", 300)

    def test_high_threshold_needs_more_active_pages(self):
        kernel, vu, khugepaged = self.make_setup(threshold=64)
        proc = kernel.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE, mergeable=True)
        populate_range(proc, vma)
        for _ in range(30):
            proc.read_page(vma, 5)  # only one active page
            kernel.idle(40 * MS)
        kernel.idle(SECOND)
        assert khugepaged.collapses == 0
