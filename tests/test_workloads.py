"""Tests for VM images and the synthetic benchmark workloads."""

from __future__ import annotations

import pytest

from repro.kernel.kernel import Kernel
from repro.mem.content import tagged_content
from repro.params import PAGE_SIZE, SECOND
from repro.workloads import (
    ApacheWorkload,
    BenchSpec,
    DISTRO_IMAGES,
    KeyValueWorkload,
    OperationStats,
    PostmarkWorkload,
    StreamWorkload,
    SyntheticBenchmark,
    boot_vm,
    diverse_images,
)
from repro.workloads.base import skewed_index
import random

from tests.conftest import small_spec


@pytest.fixture
def kernel():
    return Kernel(small_spec(frames=16384))


class TestOperationStats:
    def test_throughput(self):
        stats = OperationStats("x", operations=100, simulated_ns=SECOND)
        assert stats.throughput_per_s == 100

    def test_zero_time(self):
        assert OperationStats("x").throughput_per_s == 0.0

    def test_percentiles(self):
        stats = OperationStats("x")
        stats.latencies = list(range(1, 101))
        assert stats.percentile(50) == 50
        assert stats.percentile(99) == 99
        assert stats.percentile(100) == 100

    def test_percentile_empty(self):
        assert OperationStats("x").percentile(99) == 0

    def test_mean(self):
        stats = OperationStats("x")
        stats.latencies = [10, 20, 30]
        assert stats.mean_latency == 20


class TestSkewedIndex:
    def test_range(self):
        rng = random.Random(1)
        values = [skewed_index(rng, 100, 3.0) for _ in range(1000)]
        assert all(0 <= v < 100 for v in values)

    def test_skew_concentrates_low(self):
        rng = random.Random(1)
        values = [skewed_index(rng, 100, 4.0) for _ in range(2000)]
        low = sum(1 for v in values if v < 10)
        assert low > len(values) * 0.4


class TestVmImages:
    def test_same_image_vms_hold_duplicates(self, kernel):
        image = DISTRO_IMAGES["debian"]
        a = boot_vm(kernel, "a", image)
        b = boot_vm(kernel, "b", image)
        content_a = a.process.read(a.page_addr("page_cache", 5)).content
        content_b = b.process.read(b.page_addr("page_cache", 5)).content
        assert content_a == content_b
        kernel_a = a.process.read(a.page_addr("kernel", 0)).content
        kernel_b = b.process.read(b.page_addr("kernel", 0)).content
        assert kernel_a == kernel_b

    def test_app_pages_unique_per_vm(self, kernel):
        image = DISTRO_IMAGES["debian"]
        a = boot_vm(kernel, "a", image)
        b = boot_vm(kernel, "b", image)
        assert (
            a.process.read(a.page_addr("rest", 0)).content
            != b.process.read(b.page_addr("rest", 0)).content
        )

    def test_different_distros_differ(self, kernel):
        a = boot_vm(kernel, "a", DISTRO_IMAGES["debian"])
        b = boot_vm(kernel, "b", DISTRO_IMAGES["ubuntu"])
        assert (
            a.process.read(a.page_addr("kernel", 0)).content
            != b.process.read(b.page_addr("kernel", 0)).content
        )

    def test_free_region_mostly_zero(self, kernel):
        vm = boot_vm(kernel, "a", DISTRO_IMAGES["debian"])
        zeros = sum(
            1
            for index in range(vm.image.free_pages)
            if vm.process.read(vm.page_addr("buddy", index)).content == b""
        )
        assert zeros >= vm.image.free_pages * 0.7

    def test_regions_tagged(self, kernel):
        vm = boot_vm(kernel, "a", DISTRO_IMAGES["centos"])
        for kind in ("kernel", "page_cache", "buddy", "rest"):
            assert vm.region(kind).extra["guest_kind"] == kind

    def test_diverse_images_deterministic(self):
        assert diverse_images(8, seed=7) == diverse_images(8, seed=7)
        assert diverse_images(8, seed=7) != diverse_images(8, seed=8)

    def test_total_pages(self):
        image = DISTRO_IMAGES["debian"]
        assert image.total_pages == (
            image.kernel_pages + image.page_cache_pages
            + image.free_pages + image.app_pages
        )


class TestApacheWorkload:
    def test_requests_complete_and_time_passes(self, kernel):
        vm = boot_vm(kernel, "web", DISTRO_IMAGES["debian"])
        workload = ApacheWorkload(vm)
        stats = workload.run(200)
        assert stats.operations == 200
        assert stats.simulated_ns > 0
        assert len(stats.latencies) == 200

    def test_worker_pool_expands(self, kernel):
        vm = boot_vm(kernel, "web", DISTRO_IMAGES["debian"])
        workload = ApacheWorkload(vm, expand_every=10)
        before = workload.worker_pages
        workload.run(100)
        assert workload.worker_pages > before

    def test_latency_includes_compute(self, kernel):
        vm = boot_vm(kernel, "web", DISTRO_IMAGES["debian"])
        workload = ApacheWorkload(vm, compute_ns=50_000)
        stats = workload.run(10)
        assert min(stats.latencies) >= 50_000


class TestKeyValueWorkload:
    def test_get_set_split(self, kernel):
        proc = kernel.create_process("kv")
        workload = KeyValueWorkload(proc, kind="redis", value_pages=128)
        stats, gets, sets = workload.run_split(500)
        assert stats.operations == 500
        assert gets.operations + sets.operations == 500
        assert sets.operations > 0

    def test_memcached_has_larger_footprint(self, kernel):
        redis = KeyValueWorkload(kernel.create_process("r"), kind="redis",
                                 value_pages=128)
        memcached = KeyValueWorkload(kernel.create_process("m"),
                                     kind="memcached", value_pages=128)
        assert memcached.values.num_pages > redis.values.num_pages

    def test_default_pages_identical(self, kernel):
        proc = kernel.create_process("kv")
        workload = KeyValueWorkload(proc, kind="redis", value_pages=256,
                                    default_fraction=0.5)
        contents = [
            proc.read(workload.values.start + page * PAGE_SIZE).content
            for page in range(256)
        ]
        default = tagged_content("redis", "default-object", proc.name)
        share = sum(1 for c in contents if c == default) / 256
        assert 0.3 < share < 0.7

    def test_unknown_kind_rejected(self, kernel):
        with pytest.raises(ValueError):
            KeyValueWorkload(kernel.create_process("kv"), kind="etcd")


class TestPostmarkWorkload:
    def test_transactions_run(self, kernel):
        vm = boot_vm(kernel, "mail", DISTRO_IMAGES["debian"])
        workload = PostmarkWorkload(vm)
        stats = workload.run(300)
        assert stats.operations == 300
        assert stats.simulated_ns > 0

    def test_files_churn(self, kernel):
        vm = boot_vm(kernel, "mail", DISTRO_IMAGES["debian"])
        workload = PostmarkWorkload(vm, initial_files=16)
        ids_before = set(workload._files)
        workload.run(400)
        assert set(workload._files) != ids_before


class TestStreamWorkload:
    def test_bandwidth_positive(self, kernel):
        proc = kernel.create_process("stream")
        stream = StreamWorkload(proc, array_pages=64)
        for name in ("copy", "scale", "add", "triad"):
            assert stream.kernel_bandwidth(name, iterations=1) > 0

    def test_add_moves_more_bytes_per_op(self, kernel):
        proc = kernel.create_process("stream")
        stream = StreamWorkload(proc, array_pages=32)
        elapsed_copy, moved_copy = stream._sweep(("a",), ("c",))
        elapsed_add, moved_add = stream._sweep(("a", "b"), ("c",))
        assert moved_add == moved_copy * 3 // 2

    def test_run_counts_kernels(self, kernel):
        proc = kernel.create_process("stream")
        stream = StreamWorkload(proc, array_pages=16)
        stats = stream.run(2)
        assert stats.operations == 8


class TestSyntheticBenchmark:
    def test_runs_and_reports(self, kernel):
        proc = kernel.create_process("bench")
        bench = SyntheticBenchmark(proc, BenchSpec("toy", pages=64))
        stats = bench.run(50)
        assert stats.operations == 50
        assert stats.name == "toy"

    def test_deterministic_given_seed(self):
        def run_once():
            kernel = Kernel(small_spec(frames=16384))
            proc = kernel.create_process("bench")
            bench = SyntheticBenchmark(proc, BenchSpec("toy", pages=64), seed=5)
            return bench.run(50).simulated_ns

        assert run_once() == run_once()
