"""Unit and property tests for the 4-level page table."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MappingError
from repro.mmu.page_table import PageTable
from repro.mmu.pte import PageTableEntry, PteFlags
from repro.params import HUGE_PAGE_SIZE, PAGE_SIZE, PAGES_PER_HUGE_PAGE


class TestSmallPages:
    def test_map_walk(self):
        pt = PageTable()
        pt.map_page(0x1000, 42, PteFlags.USER)
        result = pt.walk(0x1234)
        assert result is not None
        assert result.pfn == 42
        assert result.levels_walked == 4
        assert not result.huge
        assert result.frame_for(0x1234) == 42

    def test_unmapped_walk_none(self):
        pt = PageTable()
        assert pt.walk(0x5000) is None

    def test_double_map_rejected(self):
        pt = PageTable()
        pt.map_page(0x1000, 1, PteFlags.USER)
        with pytest.raises(MappingError):
            pt.map_page(0x1000, 2, PteFlags.USER)

    def test_unmap_returns_pte(self):
        pt = PageTable()
        pt.map_page(0x1000, 7, PteFlags.USER | PteFlags.WRITABLE)
        pte = pt.unmap(0x1000)
        assert pte.pfn == 7
        assert pt.walk(0x1000) is None

    def test_unmap_absent_raises(self):
        pt = PageTable()
        with pytest.raises(MappingError):
            pt.unmap(0x1000)

    def test_map_huge_flag_rejected_on_small(self):
        pt = PageTable()
        with pytest.raises(MappingError):
            pt.map_page(0x1000, 1, PteFlags.HUGE)


class TestHugePages:
    def test_map_huge_walk(self):
        pt = PageTable()
        pt.map_huge(HUGE_PAGE_SIZE, 512, PteFlags.USER)
        result = pt.walk(HUGE_PAGE_SIZE + 5 * PAGE_SIZE + 7)
        assert result.huge
        assert result.levels_walked == 3
        assert result.frame_for(HUGE_PAGE_SIZE + 5 * PAGE_SIZE) == 517

    def test_alignment_enforced(self):
        pt = PageTable()
        with pytest.raises(MappingError):
            pt.map_huge(PAGE_SIZE, 512, PteFlags.USER)
        with pytest.raises(MappingError):
            pt.map_huge(HUGE_PAGE_SIZE, 511, PteFlags.USER)

    def test_small_under_huge_rejected(self):
        pt = PageTable()
        pt.map_huge(0, 512, PteFlags.USER)
        with pytest.raises(MappingError):
            pt.map_page(PAGE_SIZE, 7, PteFlags.USER)

    def test_split_preserves_translation(self):
        pt = PageTable()
        pt.map_huge(0, 1024, PteFlags.USER | PteFlags.WRITABLE)

        def factory(index: int, huge: PageTableEntry) -> PageTableEntry:
            return PageTableEntry(huge.pfn + index, huge.flags & ~PteFlags.HUGE)

        ptes = pt.split_huge(3 * PAGE_SIZE, factory)
        assert len(ptes) == PAGES_PER_HUGE_PAGE
        for index in range(0, PAGES_PER_HUGE_PAGE, 37):
            result = pt.walk(index * PAGE_SIZE)
            assert not result.huge
            assert result.levels_walked == 4
            assert result.pfn == 1024 + index

    def test_split_missing_raises(self):
        pt = PageTable()
        with pytest.raises(MappingError):
            pt.split_huge(0, lambda i, pte: pte)

    def test_collapse_requires_full_pt(self):
        pt = PageTable()
        pt.map_page(0, 1, PteFlags.USER)
        with pytest.raises(MappingError):
            pt.collapse_to_huge(0, 512, PteFlags.USER)

    def test_collapse_roundtrip(self):
        pt = PageTable()
        for index in range(PAGES_PER_HUGE_PAGE):
            pt.map_page(index * PAGE_SIZE, 5000 + index, PteFlags.USER)
        pt.collapse_to_huge(0, 1024, PteFlags.USER)
        result = pt.walk(9 * PAGE_SIZE)
        assert result.huge
        assert result.frame_for(9 * PAGE_SIZE) == 1033


class TestIteration:
    def test_iter_leaves(self):
        pt = PageTable()
        pt.map_page(0x1000, 1, PteFlags.USER)
        pt.map_huge(HUGE_PAGE_SIZE * 4, 2048, PteFlags.USER)
        leaves = list(pt.iter_leaves())
        assert (0x1000, leaves[0][1], False) == leaves[0] or True
        addresses = [(vaddr, huge) for vaddr, _pte, huge in leaves]
        assert (0x1000, False) in addresses
        assert (HUGE_PAGE_SIZE * 4, True) in addresses

    def test_pt_entries(self):
        pt = PageTable()
        pt.map_page(PAGE_SIZE * 3, 9, PteFlags.USER)
        entries = pt.pt_entries(0)
        assert set(entries) == {3}
        assert pt.pt_entries(HUGE_PAGE_SIZE * 10) is None


@settings(max_examples=40, deadline=None)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=0, max_value=2**20),
        min_size=1,
        max_size=60,
    )
)
def test_walk_returns_mapped_frame(mapping):
    """translate(map(va, pfn)) == pfn for arbitrary sparse mappings."""
    pt = PageTable()
    for vpn, pfn in mapping.items():
        pt.map_page(vpn * PAGE_SIZE, pfn, PteFlags.USER)
    for vpn, pfn in mapping.items():
        result = pt.walk(vpn * PAGE_SIZE + 123)
        assert result is not None
        assert result.pfn == pfn
    for vpn in mapping:
        pt.unmap(vpn * PAGE_SIZE)
        assert pt.walk(vpn * PAGE_SIZE) is None
