"""Mutation meta-test: the scan-kernel conformance probes are under test.

Each case plants one realistic boundary bug — a single edit — into the
real ``repro/mem/scankernel.py`` source, loads the mutant as a live
module, and asserts a probe built from the differential/property-suite
checks distinguishes it from the pristine kernel.  The dual is pinned
too: the pristine source, loaded through the identical machinery, must
produce exactly the live module's behaviour signature.  Together these
bound both false negatives (a seeded off-by-one the suites would miss)
and false positives (a probe that trips on correct code).

The probe state is deliberately adversarial: the zero page sits at
pfn 0 (catches ``pfn and ...`` truthiness slips), first-encounter
group order differs from ascending cid order (catches bucket-ordering
bugs), a probed content's digest has the top bit set (catches signed
64-bit truncation), and out-of-range pfns sit exactly at
``num_frames`` (catches ``>=`` vs ``>`` bounds slips).
"""

from __future__ import annotations

import pathlib
import types

import pytest

from repro.errors import InvalidFrameError
from repro.mem.content import ZERO_PAGE, content_digest, tagged_content
from repro.mem.physmem import PhysicalMemory
from repro.mem.scankernel import HAVE_NUMPY

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCANKERNEL = REPO_ROOT / "src" / "repro" / "mem" / "scankernel.py"

NUM_FRAMES = 12

#: A probed content whose 64-bit digest has the sign bit set, so a
#: mutant that narrows the digest column to int64 must either wrap or
#: overflow.  The search is deterministic (blake2b of tagged pages).
HIGH_TAG = next(
    tag
    for tag in range(1, 64)
    if content_digest(tagged_content("mutprobe", tag)) >= 2**63
)
LOW_TAG = next(
    tag
    for tag in range(1, 64)
    if tag != HIGH_TAG
    and content_digest(tagged_content("mutprobe", tag)) < 2**63
)

#: Probe batch: zero frames (including pfn 0), duplicates, and a
#: first-encounter order (HIGH_TAG before LOW_TAG before zero) that
#: does NOT match ascending cid order (zero's cid is 0).
PROBE_PFNS = [4, 1, 7, 0, 2, 4, 11, 0]


def build_probe_machine() -> PhysicalMemory:
    physmem = PhysicalMemory(NUM_FRAMES)
    physmem.write(4, tagged_content("mutprobe", HIGH_TAG))
    physmem.write(1, tagged_content("mutprobe", LOW_TAG))
    physmem.write(7, tagged_content("mutprobe", HIGH_TAG))
    physmem.write(2, tagged_content("mutprobe", LOW_TAG))
    physmem.write(9, tagged_content("mutprobe", LOW_TAG))
    physmem.write(9, ZERO_PAGE)
    physmem.get_ref(4)
    physmem.get_ref(4)
    physmem.get_ref(1)
    physmem.pin_fused(5)
    return physmem


def expect_invalid(probe, *batch) -> str:
    """What a bounds probe raises — the *type* is part of the contract
    (``InvalidFrameError``, never a bare ``IndexError`` from NumPy)."""
    try:
        probe(*batch)
        return "no-error"
    except InvalidFrameError:
        return "invalid-frame"
    except Exception as exc:  # noqa: BLE001 - classified into the signature
        return type(exc).__name__


def kernel_signature(kernel, physmem: PhysicalMemory) -> tuple:
    """Everything the conformance suites observe, as one comparable value."""
    stats = physmem.fingerprints.stats
    hits_before, misses_before = stats.digest_hits, stats.digest_misses
    digests = kernel.digest_sweep(PROBE_PFNS)
    hits_delta = stats.digest_hits - hits_before
    misses_delta = stats.digest_misses - misses_before
    generations = kernel.generation_snapshot(PROBE_PFNS)
    bumped = [recorded + 1 for recorded in generations]
    return (
        kernel.backend,
        [kernel.is_zero_frame(pfn) for pfn in (0, 4, 9)],
        kernel.zero_frames(PROBE_PFNS),
        list(kernel.group_by_content(PROBE_PFNS).values()),
        kernel.dirty_intersection(PROBE_PFNS, {0, 4, 6}),
        kernel.any_fused([5]),
        kernel.any_fused([6, 11]),
        generations,
        kernel.changed_since(PROBE_PFNS, generations),
        # A snapshot *ahead* of the live column still reads "changed":
        # generation inequality, not ordering.
        kernel.changed_since(PROBE_PFNS, bumped),
        digests,
        [type(value) is int for value in digests],
        (hits_delta, misses_delta),
        kernel.refcount_sum(PROBE_PFNS),
        expect_invalid(kernel.zero_frames, [NUM_FRAMES]),
        expect_invalid(kernel.generation_snapshot, [NUM_FRAMES]),
        expect_invalid(kernel.digest_sweep, [3, NUM_FRAMES]),
        expect_invalid(kernel.refcount_sum, [-1]),
    )


def module_signature(module) -> tuple:
    """Signatures of every batch backend the module can build."""
    signatures = []
    physmem = build_probe_machine()
    signatures.append(
        ("array", kernel_signature(
            module.BatchScanKernel(physmem, use_numpy=False), physmem
        ))
    )
    if module.HAVE_NUMPY:
        physmem = build_probe_machine()
        signatures.append(
            ("numpy", kernel_signature(
                module.BatchScanKernel(physmem, use_numpy=True), physmem
            ))
        )
    return tuple(signatures)


def run_probe(module) -> tuple:
    """Probe outcome: the signature, or the exception class it died on."""
    try:
        return ("ok", module_signature(module))
    except Exception as exc:  # noqa: BLE001 - crashing IS a distinguisher
        return ("raised", type(exc).__name__)


def load_module(source: str):
    """Exec scan-kernel source as a throwaway module (never installed)."""
    module = types.ModuleType("repro.mem.scankernel_mutant")
    module.__file__ = str(SCANKERNEL)
    exec(compile(source, str(SCANKERNEL), "exec"), module.__dict__)
    return module


def mutate(old: str, new: str) -> str:
    """One-edit mutant of the real source; the anchor must be unique."""
    source = SCANKERNEL.read_text(encoding="utf-8")
    occurrences = source.count(old)
    assert occurrences == 1, (
        f"mutation anchor matched {occurrences}x in scankernel.py; the "
        f"meta-test needs updating: {old!r}"
    )
    return source.replace(old, new, 1)


needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")

MUTANTS = [
    pytest.param(
        "mask = self._cid_column()[arr] == ZERO_ID",
        "mask = self._cid_column()[arr] == ZERO_ID + 1",
        marks=needs_numpy,
        id="numpy-zero-mask-wrong-sentinel",
    ),
    pytest.param(
        "            if cids[pfn] == ZERO_ID:\n                out.append(pfn)",
        "            if pfn and cids[pfn] == ZERO_ID:\n"
        "                out.append(pfn)",
        id="fallback-zero-sweep-drops-pfn-zero",
    ),
    pytest.param(
        "members = order[start:start + count].tolist()",
        "members = order[start:start + count - 1].tolist()",
        marks=needs_numpy,
        id="numpy-group-slice-off-by-one",
    ),
    pytest.param(
        "buckets.sort()",
        "buckets.sort(key=lambda bucket: bucket[1])",
        marks=needs_numpy,
        id="numpy-group-order-by-cid-not-first-encounter",
    ),
    pytest.param(
        "stats.digest_hits += len(arr) - misses",
        "stats.digest_hits += len(arr)",
        marks=needs_numpy,
        id="numpy-digest-hit-accounting-ignores-misses",
    ),
    pytest.param(
        "return arr[self._gen_column()[arr] != recorded].tolist()",
        "return arr[self._gen_column()[arr] > recorded].tolist()",
        marks=needs_numpy,
        id="numpy-changed-since-ordered-compare",
    ),
    pytest.param(
        "int(arr.max()) >= self.physmem.num_frames",
        "int(arr.max()) > self.physmem.num_frames",
        marks=needs_numpy,
        id="numpy-bounds-check-off-by-one",
    ),
    pytest.param(
        "return not self.physmem._fusion_pinned.isdisjoint(pfns)",
        "return self.physmem._fusion_pinned.isdisjoint(pfns)",
        id="any-fused-polarity-inverted",
    ),
    pytest.param(
        "values = np.empty(unique.size, dtype=np.uint64)",
        "values = np.empty(unique.size, dtype=np.int64)",
        marks=needs_numpy,
        id="numpy-digest-column-signed-truncation",
    ),
]


@pytest.fixture(scope="module")
def pristine_outcome() -> tuple:
    outcome = run_probe(
        load_module(SCANKERNEL.read_text(encoding="utf-8"))
    )
    assert outcome[0] == "ok", outcome
    return outcome


class TestMutantsAreCaught:
    @pytest.mark.parametrize("old, new", MUTANTS)
    def test_mutant_behaviour_diverges(self, old, new, pristine_outcome):
        mutant = load_module(mutate(old, new))
        assert run_probe(mutant) != pristine_outcome, (
            "seeded kernel bug produced a behaviour signature identical "
            "to the pristine kernel; the conformance probes have a blind "
            f"spot for: {new!r}"
        )

    @pytest.mark.parametrize("old, new", MUTANTS)
    def test_anchor_is_unique_and_reverts_cleanly(self, old, new):
        # mutate() asserts uniqueness; reverting the edit restores the
        # pristine source byte-for-byte, so each case is one real edit.
        mutated = mutate(old, new)
        assert mutated.replace(new, old, 1) == SCANKERNEL.read_text(
            encoding="utf-8"
        )


class TestPristineKernel:
    def test_reloaded_pristine_source_matches_live_module(
        self, pristine_outcome
    ):
        import repro.mem.scankernel as live

        live_sig = ("ok", module_signature(live))
        assert live_sig == pristine_outcome

    def test_probe_state_is_adversarial(self):
        """The fixture really exercises the corners the mutants hide in."""
        physmem = build_probe_machine()
        assert physmem.peek_content(0) == ZERO_PAGE
        assert 0 in PROBE_PFNS
        assert content_digest(physmem.peek_content(4)) >= 2**63
        assert NUM_FRAMES - 1 == 11 and 11 in PROBE_PFNS
        # First-encounter content order (HIGH, LOW, zero) must not be
        # ascending-cid order, or the bucket-order mutant is invisible.
        first_seen = []
        for pfn in PROBE_PFNS:
            content = physmem.peek_content(pfn)
            if content not in first_seen:
                first_seen.append(content)
        assert first_seen.index(ZERO_PAGE) != 0
