"""Sharded fleet execution: topology, pool, determinism, degradation.

The scenario-level ``-j1 == -jN`` contract: a :class:`ScenarioSpec`
with ``shards = N`` describes a NUMA-style topology whose results are
a pure function of the spec — how many worker *processes* execute the
shards (``--shards`` on the CLI, :class:`ShardPoolConfig.workers`)
must never change a payload byte.  This suite pins that contract
across the serial reference executor, the multiprocess shard pool,
crashed/hung/retried workers, the degraded mode, sanitized runs and
the runner task layer; plus the spec validation and ``resolve_jobs``
satellites.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro.harness.fleet import FLEET_PRESETS, FleetDriver
from repro.harness.scenario import SystemConfig
from repro.harness.shardfleet import (
    combine_shard_results,
    run_one_shard,
    run_sharded_serial,
)
from repro.harness.spec import FleetSpec, ScenarioSpec, ScheduleSpec
from repro.mem.shard import ShardExchangeError
from repro.params import MS, SECOND
from repro.runner import (
    ProgressPrinter,
    ShardExchangeResolved,
    ShardPoolConfig,
    ShardPoolDegraded,
    ShardRoundCompleted,
    ShardWorkerRetrying,
    TaskSpec,
    canonical_json,
    execute_task,
    resolve_jobs,
    run_sharded,
)
from repro.runner.shardpool import ShardPool, _ShardPoolBroken


def small_spec(shards: int = 2, engine: str = "ksm",
               seed: int = 1017) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"shardfleet-{engine}-{shards}",
        system=SystemConfig(label=engine.upper(), engine=engine),
        fleet=FleetSpec(vms=4, image_families=2, pages_per_vm=64,
                        max_resident=2, lifetime_ns=SECOND,
                        arrival_interval_ns=125 * MS),
        schedule=ScheduleSpec(settle_ns=SECOND),
        frames=2048 * shards,
        seed=seed,
        shards=shards,
    )


def payload(result) -> str:
    return canonical_json({"samples": result.to_payload()["samples"],
                           "totals": result.totals})


# ---------------------------------------------------------------------------
# Failure-injection shard functions.  Module-level so the fork-started
# workers can pickle them by reference; coordination goes through
# marker files under REPRO_SHARD_FAIL_DIR (set by the tests, inherited
# by the children), because each worker is a separate process.
# ---------------------------------------------------------------------------
def _marker(tag: str) -> pathlib.Path:
    return pathlib.Path(os.environ["REPRO_SHARD_FAIL_DIR"]) / tag


def crash_once_shard_fn(spec, shard, on_round=None):
    if shard == 1 and not _marker("crashed").exists():
        _marker("crashed").touch()
        os._exit(23)  # simulated segfault: no reply, bad exit code
    return run_one_shard(spec, shard, on_round=on_round)


def hang_once_shard_fn(spec, shard, on_round=None):
    if shard == 1 and not _marker("hung").exists():
        _marker("hung").touch()
        time.sleep(3600.0)  # trips the progress watchdog
    return run_one_shard(spec, shard, on_round=on_round)


def always_crash_shard_fn(spec, shard, on_round=None):
    os._exit(23)


# ---------------------------------------------------------------------------
# Spec validation + worker-count resolution satellites
# ---------------------------------------------------------------------------
class TestSpecValidation:
    def test_shards_must_divide_frames(self):
        with pytest.raises(ValueError, match="divide evenly"):
            ScenarioSpec(name="x", system=SystemConfig.preset("ksm"),
                         fleet=FleetSpec(vms=2, pages_per_vm=16,
                                         max_resident=1),
                         frames=4096, shards=3)

    def test_per_shard_frames_floor(self):
        with pytest.raises(ValueError, match=">= 1024"):
            ScenarioSpec(name="x", system=SystemConfig.preset("ksm"),
                         fleet=FleetSpec(vms=2, pages_per_vm=16,
                                         max_resident=1),
                         frames=2048, shards=4)

    def test_shards_must_be_positive_int(self):
        with pytest.raises(ValueError, match="integer >= 1"):
            ScenarioSpec(name="x", system=SystemConfig.preset("ksm"),
                         shards=0)

    def test_residency_window_checked_per_shard(self):
        # Fits a 1-shard machine (peak 4032 <= 4096) but not each
        # 2048-frame node (per-shard peak 5 * 448 = 2240).
        fleet = FleetSpec(vms=10, pages_per_vm=448, max_resident=9)
        ScenarioSpec(name="x", system=SystemConfig.preset("ksm"),
                     fleet=fleet, frames=4096, shards=1)
        with pytest.raises(ValueError, match="exceed"):
            ScenarioSpec(name="x", system=SystemConfig.preset("ksm"),
                         fleet=fleet, frames=4096, shards=2)

    def test_shard_max_resident_splits_window(self):
        spec = small_spec(shards=2)
        assert spec.shard_max_resident == 1
        assert small_spec(shards=1).shard_max_resident == 2

    def test_round_trips_through_json(self):
        spec = small_spec(shards=2)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert spec.to_dict()["shards"] == 2

    def test_shards_default_to_one(self):
        document = small_spec(shards=2).to_dict()
        del document["shards"]
        assert ScenarioSpec.from_dict(document).shards == 1

    def test_schema_declares_shards(self):
        assert ScenarioSpec.schema()["scenario"]["shards"] == "int"


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5

    def test_default_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None, default=2) == 2

    def test_zero_means_all_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_custom_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        monkeypatch.setenv("REPRO_JOBS", "9")
        assert resolve_jobs(None, env_var="REPRO_SHARDS") == 4

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_jobs(-2)


# ---------------------------------------------------------------------------
# Determinism: serial reference, pool, and the legacy path
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_one_shard_is_exactly_the_legacy_driver(self):
        spec = small_spec(shards=1)
        assert payload(run_sharded_serial(spec)) \
            == payload(FleetDriver(spec).run())
        # And the unified entry point takes the same short-circuit.
        assert payload(run_sharded(spec)) \
            == payload(FleetDriver(spec).run())

    def test_pool_is_byte_identical_to_serial(self):
        spec = small_spec(shards=2)
        reference = payload(run_sharded_serial(spec))
        for workers in (2, 4):
            pooled = run_sharded(
                spec, config=ShardPoolConfig(workers=workers))
            assert payload(pooled) == reference, f"workers={workers}"

    def test_sanitized_run_is_transparent(self, monkeypatch):
        spec = small_spec(shards=2, engine="vusion")
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        plain = payload(run_sharded_serial(spec))
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        # combine_shard_results raises on any per-shard FrameSan
        # finding, so completing at all certifies clean node ledgers.
        assert payload(run_sharded_serial(spec)) == plain

    def test_task_payload_ignores_shard_workers(self):
        task = TaskSpec.fleet("smoke-sharded", system="ksm")
        serial = execute_task(task, seed=7, shard_workers=1)
        pooled = execute_task(task, seed=7, shard_workers=2)
        assert canonical_json(serial) == canonical_json(pooled)
        assert serial["totals"]["shards"] == 4

    def test_exchange_telemetry_in_totals(self):
        totals = run_sharded_serial(small_spec(shards=2)).totals
        exchange = totals["exchange"]
        assert exchange["rounds"] == len(
            run_sharded_serial(small_spec(shards=2)).samples)
        assert exchange["exchanged_cids"] >= 0
        assert exchange["resolve_ns"] \
            == totals["daemon_ns"].get("shardx", 0) - sum(
                run_one_shard(small_spec(shards=2), shard)
                .totals["daemon_ns"].get("shardx", 0)
                for shard in range(2))

    def test_incomplete_results_rejected(self):
        spec = small_spec(shards=2)
        only_one = [run_one_shard(spec, 0)]
        with pytest.raises(ShardExchangeError, match="incomplete"):
            combine_shard_results(spec, only_one)


# ---------------------------------------------------------------------------
# Progress events
# ---------------------------------------------------------------------------
class TestProgress:
    def test_pooled_run_streams_shard_events(self):
        spec = small_spec(shards=2)
        events = []
        result = run_sharded(spec, config=ShardPoolConfig(workers=2),
                             on_event=events.append)
        rounds = [e for e in events if isinstance(e, ShardRoundCompleted)]
        resolved = [e for e in events
                    if isinstance(e, ShardExchangeResolved)]
        assert {event.shard for event in rounds} == {0, 1}
        assert len(resolved) == result.totals["exchange"]["rounds"]
        assert [event.round_no for event in resolved] \
            == sorted(event.round_no for event in resolved)
        assert sum(e.intents_applied for e in resolved) \
            == result.totals["exchange"]["merge_intents_applied"]

    def test_printer_is_quiet_unless_verbose(self, capsys):
        event = ShardRoundCompleted(scenario="s", shard=1, round_no=2,
                                    exported_cids=3, booted=4, resident=1)
        ProgressPrinter()(event)
        assert capsys.readouterr().out == ""
        ProgressPrinter(verbose=True)(event)
        assert "shard 1 round 2" in capsys.readouterr().out

    def test_printer_always_reports_failures(self, capsys):
        ProgressPrinter()(ShardWorkerRetrying(
            scenario="s", shards=(1,), reason="crashed", attempt=0))
        assert "retry" in capsys.readouterr().out
        ProgressPrinter()(ShardPoolDegraded(scenario="s", reason="why"))
        assert "degraded" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Pool failure handling
# ---------------------------------------------------------------------------
needs_fork = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="failure injection rides on fork-inherited test modules",
)


@needs_fork
class TestPoolFailures:
    def test_crashed_worker_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_FAIL_DIR", str(tmp_path))
        spec = small_spec(shards=2)
        events = []
        result = run_sharded(
            spec,
            config=ShardPoolConfig(workers=2, start_method="fork"),
            on_event=events.append, shard_fn=crash_once_shard_fn)
        retries = [e for e in events if isinstance(e, ShardWorkerRetrying)]
        assert [event.reason for event in retries] == ["crashed"]
        assert retries[0].shards == (1,)
        assert not any(isinstance(e, ShardPoolDegraded) for e in events)
        assert payload(result) == payload(run_sharded_serial(spec))

    def test_hung_worker_trips_watchdog(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_FAIL_DIR", str(tmp_path))
        spec = small_spec(shards=2)
        events = []
        result = run_sharded(
            spec,
            config=ShardPoolConfig(workers=2, timeout_s=1.0,
                                   retry_backoff_s=0.05,
                                   start_method="fork"),
            on_event=events.append, shard_fn=hang_once_shard_fn)
        retries = [e for e in events if isinstance(e, ShardWorkerRetrying)]
        assert [event.reason for event in retries] == ["timeout"]
        assert payload(result) == payload(run_sharded_serial(spec))

    def test_exhausted_retries_degrade_to_serial(self, monkeypatch):
        spec = small_spec(shards=2)
        events = []
        result = run_sharded(
            spec,
            config=ShardPoolConfig(workers=2, max_retries=0,
                                   start_method="fork"),
            on_event=events.append, shard_fn=always_crash_shard_fn)
        degraded = [e for e in events if isinstance(e, ShardPoolDegraded)]
        assert len(degraded) == 1
        assert "kept failing" in degraded[0].reason
        assert payload(result) == payload(run_sharded_serial(spec))

    def test_pool_itself_raises_when_budget_exhausted(self):
        pool = ShardPool(small_spec(shards=2),
                         config=ShardPoolConfig(workers=2, max_retries=0,
                                                start_method="fork"),
                         shard_fn=always_crash_shard_fn)
        with pytest.raises(_ShardPoolBroken, match="kept failing"):
            pool.run()


class TestDegradedModes:
    def test_unbuildable_pool_degrades(self):
        spec = small_spec(shards=2)
        events = []
        result = run_sharded(
            spec,
            config=ShardPoolConfig(workers=2, start_method="bogus"),
            on_event=events.append)
        assert any(isinstance(e, ShardPoolDegraded) for e in events)
        assert payload(result) == payload(run_sharded_serial(spec))

    def test_force_serial_skips_the_pool(self):
        spec = small_spec(shards=2)
        result = run_sharded(spec, config=ShardPoolConfig(
            workers=8, force_serial=True))
        assert payload(result) == payload(run_sharded_serial(spec))


# ---------------------------------------------------------------------------
# Preset wiring
# ---------------------------------------------------------------------------
class TestPresets:
    def test_smoke_sharded_preset_declares_topology(self):
        preset = FLEET_PRESETS["smoke-sharded"]
        assert preset.shards == 4
        spec = preset.spec(system="ksm", scale="quick", seed=1)
        assert spec.shards == 4
        assert spec.frames % 4 == 0

    def test_legacy_presets_stay_single_shard(self):
        for name, preset in FLEET_PRESETS.items():
            if name != "smoke-sharded":
                assert preset.shards == 1, name
