"""Tests for MADV_UNMERGEABLE semantics and KSM's use_zero_pages."""

from __future__ import annotations

from repro.core.vusion import Vusion
from repro.fusion.ksm import Ksm
from repro.fusion.memory_combining import MemoryCombining
from repro.kernel.kernel import Kernel, ZERO_FRAME
from repro.params import FusionConfig, MS, SECOND, VusionConfig

from tests.conftest import dup, fast_fusion, small_spec


def fused_count(process, vma):
    page_table = process.address_space.page_table
    return sum(
        1
        for vaddr in vma.pages()
        if (walk := page_table.walk(vaddr)) is not None and walk.pte.fused
    )


class TestMadviseUnmergeable:
    def test_ksm_unmerges_region(self):
        kernel = Kernel(small_spec())
        ksm = Ksm(fast_fusion())
        kernel.attach_fusion(ksm)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        va = a.mmap(8, mergeable=True)
        vb = b.mmap(8, mergeable=True)
        for index in range(8):
            a.write_page(va, index, dup("mu", index))
            b.write_page(vb, index, dup("mu", index))
        kernel.idle(2 * SECOND)
        assert fused_count(a, va) == 8
        unmerged = a.madvise_mergeable(va, False)
        assert unmerged == 8
        assert fused_count(a, va) == 0
        # The other party keeps its merged view; contents intact.
        assert fused_count(b, vb) == 8
        for index in range(8):
            assert a.read_page(va, index) == dup("mu", index)

    def test_vusion_unmerges_region(self):
        kernel = Kernel(small_spec())
        vusion = Vusion(
            VusionConfig(random_pool_frames=128, min_idle_ns=50 * MS),
            fast_fusion(),
        )
        kernel.attach_fusion(vusion)
        a = kernel.create_process("a")
        va = a.mmap(6, mergeable=True)
        for index in range(6):
            a.write_page(va, index, dup("mv", index))
        kernel.idle(2 * SECOND)
        assert fused_count(a, va) == 6
        assert a.madvise_mergeable(va, False) == 6
        assert fused_count(a, va) == 0
        # Pages are private and freely writable again, fault-free.
        result = a.write_page(va, 0, b"plain")
        assert result.fault_kinds == ()

    def test_memory_combining_swaps_back_in(self):
        kernel = Kernel(small_spec())
        engine = MemoryCombining(fast_fusion(), swap_after_ns=100 * MS)
        kernel.attach_fusion(engine)
        a = kernel.create_process("a")
        va = a.mmap(4, mergeable=True)
        for index in range(4):
            a.write_page(va, index, dup("mc-un", index))
        kernel.idle(2 * SECOND)
        assert engine.evicted_pages() == 4
        restored = a.madvise_mergeable(va, False)
        assert restored == 4
        assert engine.evicted_pages() == 0
        for index in range(4):
            assert a.read_page(va, index) == dup("mc-un", index)

    def test_optin_returns_zero(self):
        kernel = Kernel(small_spec())
        kernel.attach_fusion(Ksm(fast_fusion()))
        a = kernel.create_process("a")
        va = a.mmap(2)
        assert a.madvise_mergeable(va) == 0

    def test_no_engine_noop(self):
        kernel = Kernel(small_spec())
        a = kernel.create_process("a")
        va = a.mmap(2, mergeable=True)
        assert a.madvise_mergeable(va, False) == 0


class TestUseZeroPages:
    def make_setup(self, use_zero_pages=True):
        kernel = Kernel(small_spec())
        ksm = Ksm(fast_fusion(), use_zero_pages=use_zero_pages)
        kernel.attach_fusion(ksm)
        return kernel, ksm

    def test_zero_pages_map_to_kernel_zero_frame(self):
        kernel, ksm = self.make_setup()
        a = kernel.create_process("a")
        va = a.mmap(6, mergeable=True)
        for index in range(6):
            a.write_page(va, index, b"tmp")
            a.write_page(va, index, b"")
        kernel.idle(2 * SECOND)
        for vaddr in va.pages():
            walk = a.address_space.page_table.walk(vaddr)
            assert walk.pte.pfn == ZERO_FRAME
            assert walk.pte.fused
        shared, sharing = ksm.sharing_pairs()
        assert sharing >= 6

    def test_write_breaks_zero_mapping(self):
        kernel, ksm = self.make_setup()
        a = kernel.create_process("a")
        va = a.mmap(2, mergeable=True)
        for index in range(2):
            a.write_page(va, index, b"x")
            a.write_page(va, index, b"")
        kernel.idle(2 * SECOND)
        a.write_page(va, 0, b"fresh")
        assert a.read_page(va, 0) == b"fresh"
        assert kernel.physmem.read(ZERO_FRAME) == b""
        walk = a.address_space.page_table.walk(va.start)
        assert walk.pte.pfn != ZERO_FRAME

    def test_disabled_by_default(self):
        kernel, ksm = self.make_setup(use_zero_pages=False)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        va = a.mmap(2, mergeable=True)
        vb = b.mmap(2, mergeable=True)
        for proc, vma in ((a, va), (b, vb)):
            for index in range(2):
                proc.write_page(vma, index, b"y")
                proc.write_page(vma, index, b"")
        kernel.idle(2 * SECOND)
        # Zero pages merge like any duplicate, onto a regular node.
        walk = a.address_space.page_table.walk(va.start)
        assert walk.pte.fused
        assert walk.pte.pfn != ZERO_FRAME
