"""Behavioural and security-invariant tests for the VUsion engine."""

from __future__ import annotations

import pytest

from repro.core.vusion import Vusion
from repro.kernel.kernel import Kernel
from repro.mmu.pte import PteFlags
from repro.params import (
    FusionConfig,
    MS,
    PAGE_SIZE,
    PAGES_PER_HUGE_PAGE,
    SECOND,
    VusionConfig,
)

from tests.conftest import dup, fast_fusion, small_spec


def make_vusion_setup(
    frames: int = 4096,
    pool: int = 256,
    working_set: bool = True,
    pages_per_scan: int = 64,
):
    kernel = Kernel(small_spec(frames=frames))
    engine = Vusion(
        VusionConfig(random_pool_frames=pool, working_set_enabled=working_set),
        fast_fusion(pages=pages_per_scan),
    )
    kernel.attach_fusion(engine)
    return kernel, engine


def pair_setup(kernel, count=4, tag="v"):
    a = kernel.create_process("a")
    b = kernel.create_process("b")
    va = a.mmap(count, mergeable=True)
    vb = b.mmap(count, mergeable=True)
    for index in range(count):
        a.write_page(va, index, dup(tag, index))
        b.write_page(vb, index, dup(tag, index))
    return a, b, va, vb


class TestMergeAndFakeMerge:
    def test_duplicates_merge(self):
        kernel, vu = make_vusion_setup()
        pair_setup(kernel)
        kernel.idle(3 * SECOND)
        assert vu.saved_frames() == 4
        assert vu.stats.merges >= 4

    def test_unique_pages_fake_merged(self):
        kernel, vu = make_vusion_setup()
        a = kernel.create_process("a")
        va = a.mmap(4, mergeable=True)
        for index in range(4):
            a.write_page(va, index, dup("solo", index))
        kernel.idle(3 * SECOND)
        assert vu.stats.fake_merges >= 4
        assert vu.saved_frames() == 0

    def test_all_scanned_pages_lose_access(self):
        """Merged or not, candidate pages end with reserved+CD PTEs."""
        kernel, vu = make_vusion_setup()
        a, b, va, vb = pair_setup(kernel, count=2)
        solo = a.mmap(2, mergeable=True)
        for index in range(2):
            a.write_page(solo, index, dup("solo", index))
        kernel.idle(3 * SECOND)
        for vma, proc in ((va, a), (vb, b), (solo, a)):
            for vaddr in vma.pages():
                pte = proc.address_space.page_table.walk(vaddr).pte
                assert pte.reserved, f"{vma.name} page accessible after scan"
                assert pte.cache_disabled
                assert pte.fused

    def test_neither_party_frame_backs_merge(self):
        """RA: the fused frame is a fresh random frame, not a party's."""
        kernel, vu = make_vusion_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        before_a = a.address_space.page_table.walk(va.start).pfn
        before_b = b.address_space.page_table.walk(vb.start).pfn
        kernel.idle(3 * SECOND)
        after = a.address_space.page_table.walk(va.start).pfn
        assert after not in (before_a, before_b)
        assert after == b.address_space.page_table.walk(vb.start).pfn

    def test_waits_one_round_before_fusing(self):
        """A freshly-written page has its accessed bit set, so it is
        skipped on the first visit (Fig. 10: VUsion merges later)."""
        kernel, vu = make_vusion_setup(pages_per_scan=512)
        pair_setup(kernel, count=2)
        # One scan tick covers everything once: only clears A bits.
        kernel.idle(21 * MS)
        assert vu.stats.working_set_skips >= 4
        assert vu.stats.merges == 0
        kernel.idle(SECOND)
        assert vu.saved_frames() == 2

    def test_working_set_not_fused(self):
        kernel, vu = make_vusion_setup()
        a, b, va, vb = pair_setup(kernel, count=2)
        hot = a.mmap(2, mergeable=True)
        for index in range(2):
            a.write_page(hot, index, dup("hot", index))
        # Keep the hot pages in the working set across scan rounds.
        for _ in range(200):
            a.read_page(hot, 0)
            a.read_page(hot, 1)
            kernel.idle(15 * MS)
        for vaddr in hot.pages():
            pte = a.address_space.page_table.walk(vaddr).pte
            assert not pte.fused, "working-set page must not be fused"

    def test_rerandomization_moves_nodes(self):
        kernel, vu = make_vusion_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        kernel.idle(3 * SECOND)
        pfn_before = a.address_space.page_table.walk(va.start).pfn
        kernel.idle(3 * SECOND)
        pfn_after = a.address_space.page_table.walk(va.start).pfn
        assert pfn_before != pfn_after, "node must move each scan round"
        assert vu.rerandomizations > 0
        # Still merged: both parties share the (new) frame.
        assert pfn_after == b.address_space.page_table.walk(vb.start).pfn


class TestCopyOnAccess:
    def test_read_takes_coa_and_restores_access(self):
        kernel, vu = make_vusion_setup()
        a, b, va, vb = pair_setup(kernel, count=2)
        kernel.idle(3 * SECOND)
        result = a.read_page(va, 0)
        assert a.address_space.page_table.walk(va.start).pte.writable
        assert vu.stats.coa_unmerges == 1
        assert a.read_page(va, 0) == dup("v", 0)

    def test_fetch_takes_coa(self):
        kernel, vu = make_vusion_setup()
        pair_setup(kernel, count=1)
        kernel.idle(3 * SECOND)
        a = kernel.processes[0]
        vma = a.address_space.vmas[0]
        result = a.fetch(vma.start)
        assert "copy_on_access" in result.fault_kinds

    def test_write_takes_coa(self):
        kernel, vu = make_vusion_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        kernel.idle(3 * SECOND)
        result = a.write_page(va, 0, b"new")
        assert "copy_on_access" in result.fault_kinds
        assert b.read_page(vb, 0) == dup("v", 0)

    def test_coa_content_preserved(self):
        kernel, vu = make_vusion_setup()
        a = kernel.create_process("a")
        va = a.mmap(4, mergeable=True)
        for index in range(4):
            a.write_page(va, index, dup("keep", index))
        kernel.idle(3 * SECOND)
        for index in range(4):
            assert a.read_page(va, index) == dup("keep", index)

    def test_node_reclaimed_after_all_mappers_leave(self):
        kernel, vu = make_vusion_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        kernel.idle(3 * SECOND)
        node_pfn = a.address_space.page_table.walk(va.start).pfn
        a.read_page(va, 0)
        b.read_page(vb, 0)
        kernel.idle(SECOND)  # let the deferred queue drain
        assert not kernel.physmem.is_fused(node_pfn)
        assert vu.stats.stable_nodes_released >= 1

    def test_deferred_free_queue_drains(self):
        kernel, vu = make_vusion_setup()
        a, b, va, vb = pair_setup(kernel, count=4)
        kernel.idle(3 * SECOND)
        for index in range(4):
            a.read_page(va, index)
        assert len(vu.deferred) > 0
        vu.deferred.drain()
        assert len(vu.deferred) == 0
        assert vu.deferred.drained + vu.deferred.dummies > 0


class TestSameBehaviour:
    def test_identical_fault_traces(self):
        """SB core check: the fault path executes the same operations
        for merged and fake-merged pages."""
        kernel, vu = make_vusion_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        solo = a.mmap(1, mergeable=True)
        a.write_page(solo, 0, dup("solo"))
        kernel.idle(3 * SECOND)
        kernel.fault_trace = []
        a.read_page(va, 0)  # merged page
        merged_trace = list(kernel.fault_trace)
        kernel.fault_trace = []
        a.read_page(solo, 0)  # fake-merged page
        fake_trace = list(kernel.fault_trace)
        assert merged_trace == fake_trace

    def test_identical_fault_kinds(self):
        kernel, vu = make_vusion_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        solo = a.mmap(1, mergeable=True)
        a.write_page(solo, 0, dup("solo"))
        kernel.idle(3 * SECOND)
        merged = a.read(va.start)
        fake = a.read(solo.start)
        assert merged.fault_kinds == fake.fault_kinds == ("copy_on_access",)

    def test_coa_latency_independent_of_merge_status(self):
        """The headline SB property: access timing leaks nothing.

        The only variation left is physical DRAM row-buffer state,
        which is merge-independent; a KS test must not distinguish the
        two distributions (the paper reports p = 0.36 for Fig. 6).
        """
        scipy_stats = pytest.importorskip(
            "scipy.stats",
            reason="KS check needs the repro[fast] extra",
            exc_type=ImportError,
        )

        kernel, vu = make_vusion_setup(frames=16384, pages_per_scan=512)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        count = 64
        merged_vma = a.mmap(count, mergeable=True)
        twin_vma = b.mmap(count, mergeable=True)
        solo_vma = a.mmap(count, mergeable=True)
        for index in range(count):
            a.write_page(merged_vma, index, dup("m", index))
            b.write_page(twin_vma, index, dup("m", index))
            a.write_page(solo_vma, index, dup("s", index))
        kernel.idle(5 * SECOND)
        merged_times = [
            a.write_page(merged_vma, i, dup("m", i)).latency for i in range(count)
        ]
        solo_times = [
            a.write_page(solo_vma, i, dup("s", i)).latency for i in range(count)
        ]
        result = scipy_stats.ks_2samp(merged_times, solo_times)
        assert result.pvalue > 0.05, f"SB violated: p={result.pvalue}"
        # And the means are within a DRAM-row-hit of each other.
        mean_gap = abs(
            sum(merged_times) / count - sum(solo_times) / count
        )
        assert mean_gap < kernel.costs.dram_row_miss


class TestRandomizedAllocation:
    def test_coa_frames_come_from_pool(self):
        kernel, vu = make_vusion_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        kernel.idle(3 * SECOND)
        allocs_before = vu.pool.allocs
        a.read_page(va, 0)
        assert vu.pool.allocs == allocs_before + 1

    def test_low_reuse_probability(self):
        """A freed frame is not predictably handed back (RA, ~1/pool)."""
        kernel, vu = make_vusion_setup(frames=8192, pool=512)
        a, b, va, vb = pair_setup(kernel, count=1)
        reuse = 0
        trials = 40
        for _ in range(trials):
            kernel.idle(3 * SECOND)
            node = a.address_space.page_table.walk(va.start).pfn
            a.write_page(va, 0, dup("v", 0))  # CoA copy, node may die
            b.write_page(vb, 0, dup("v", 0))
            kernel.idle(SECOND)  # drain: node frame returns to pool
            new_a = a.address_space.page_table.walk(va.start).pfn
            if new_a == node:
                reuse += 1
        assert reuse <= 2, f"predictable reuse detected ({reuse}/{trials})"


class TestVusionWithThp:
    def make_thp_setup(self, conserve: bool = True):
        kernel = Kernel(small_spec(frames=32768), thp_fault_enabled=True)
        vu = Vusion(
            VusionConfig(random_pool_frames=512, thp_enabled=conserve),
            FusionConfig(pages_per_scan=1024, scan_interval=20 * MS),
        )
        kernel.attach_fusion(vu)
        return kernel, vu

    def test_idle_thp_split_and_fused(self):
        kernel, vu = self.make_thp_setup()
        a = kernel.create_process("a")
        va = a.mmap(PAGES_PER_HUGE_PAGE, mergeable=True)
        a.write(va.start, b"head")
        assert a.address_space.page_table.walk(va.start).huge
        kernel.idle(3 * SECOND)
        walk = a.address_space.page_table.walk(va.start)
        assert not walk.huge, "idle THP must be broken for fusion"
        assert walk.pte.fused
        assert vu.stats.thp_splits >= 1

    def test_active_thp_conserved_in_thp_mode(self):
        kernel, vu = self.make_thp_setup(conserve=True)
        a = kernel.create_process("a")
        va = a.mmap(PAGES_PER_HUGE_PAGE, mergeable=True)
        a.write(va.start, b"head")
        for _ in range(300):
            a.read(va.start)  # keep the huge PTE's accessed bit set
            kernel.idle(10 * MS)
        assert a.address_space.page_table.walk(va.start).huge

    def test_active_thp_split_in_max_fusion_mode(self):
        """Plain VUsion (maximum fusion rate) breaks even active THPs
        when considering them — the Fig. 9 behaviour."""
        kernel, vu = self.make_thp_setup(conserve=False)
        a = kernel.create_process("a")
        va = a.mmap(PAGES_PER_HUGE_PAGE, mergeable=True)
        a.write(va.start, b"head")
        for _ in range(100):
            a.read(va.start)
            kernel.idle(10 * MS)
        assert not a.address_space.page_table.walk(va.start).huge
        # The hot subpage itself is in the working set: not fused.
        assert not a.address_space.page_table.walk(va.start).pte.fused
