"""Tests for the prefetch and clflush architectural operations."""

from __future__ import annotations

from repro.core.vusion import Vusion
from repro.kernel.kernel import Kernel
from repro.params import FusionConfig, MS, SECOND, VusionConfig

from tests.conftest import dup, fast_fusion, small_spec


class TestPrefetchSemantics:
    def test_prefetch_loads_cache(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(1)
        proc.write(vma.start, b"x")
        proc.clflush(vma.start)
        miss = proc.prefetch(vma.start)
        hit = proc.prefetch(vma.start)
        assert not miss.llc_hit
        assert hit.llc_hit
        assert hit.latency < miss.latency

    def test_prefetch_never_faults(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(1)
        # Untouched page: no translation -> prefetch silently drops.
        result = proc.prefetch(vma.start)
        assert result.fault_kinds == ()
        assert proc.address_space.page_table.walk(vma.start) is None

    def test_prefetch_outside_vma_drops(self, kernel):
        proc = kernel.create_process("p")
        result = proc.prefetch(0xDEAD_0000)
        assert result.latency <= kernel.costs.register_op + 1

    def test_prefetch_ignores_reserved_bit(self):
        """The core of the Gruss et al. channel: a page the process
        cannot read can still be probed via prefetch (without CD)."""
        kernel = Kernel(small_spec())
        vusion = Vusion(
            VusionConfig(random_pool_frames=64, min_idle_ns=50 * MS,
                         cache_disable_enabled=False),
            fast_fusion(),
        )
        kernel.attach_fusion(vusion)
        proc = kernel.create_process("p")
        vma = proc.mmap(1, mergeable=True)
        proc.write(vma.start, dup("pf"))
        kernel.idle(2 * SECOND)
        walk = proc.address_space.page_table.walk(vma.start)
        assert walk.pte.reserved and not walk.pte.cache_disabled
        kernel.llc.flush_frame(walk.pte.pfn)
        result = proc.prefetch(vma.start)
        assert result.fault_kinds == ()
        # The page is still fused afterwards: no copy-on-access ran.
        assert proc.address_space.page_table.walk(vma.start).pte.fused
        assert kernel.llc.contains_line(walk.pte.pfn * 4096)

    def test_cd_bit_blocks_prefetch(self):
        kernel = Kernel(small_spec())
        vusion = Vusion(
            VusionConfig(random_pool_frames=64, min_idle_ns=50 * MS),
            fast_fusion(),
        )
        kernel.attach_fusion(vusion)
        proc = kernel.create_process("p")
        vma = proc.mmap(1, mergeable=True)
        proc.write(vma.start, dup("pf-cd"))
        kernel.idle(2 * SECOND)
        walk = proc.address_space.page_table.walk(vma.start)
        assert walk.pte.cache_disabled
        # The scan's own copies may have cached the node; clear that
        # state, then show the prefetch cannot bring it back.
        kernel.llc.flush_frame(walk.pte.pfn)
        proc.prefetch(vma.start)
        assert not kernel.llc.contains_line(walk.pte.pfn * 4096)


class TestClflush:
    def test_flush_evicts(self, kernel):
        proc = kernel.create_process("p")
        vma = proc.mmap(1)
        proc.write(vma.start, b"x")
        assert proc.read(vma.start).llc_hit
        proc.clflush(vma.start)
        assert not proc.read(vma.start).llc_hit

    def test_flush_requires_read_access(self):
        """Flushing a VUsion-fused page takes a copy-on-access first."""
        kernel = Kernel(small_spec())
        vusion = Vusion(
            VusionConfig(random_pool_frames=64, min_idle_ns=50 * MS),
            fast_fusion(),
        )
        kernel.attach_fusion(vusion)
        proc = kernel.create_process("p")
        vma = proc.mmap(1, mergeable=True)
        proc.write(vma.start, dup("fl"))
        kernel.idle(2 * SECOND)
        assert proc.address_space.page_table.walk(vma.start).pte.fused
        result = proc.clflush(vma.start)
        assert "copy_on_access" in result.fault_kinds
        assert not proc.address_space.page_table.walk(vma.start).pte.fused


class TestCachedCopy:
    def test_copy_page_cached(self, kernel):
        from repro.mem.physmem import FrameType

        src = kernel.alloc_frame(FrameType.ANON)
        dst = kernel.alloc_frame(FrameType.ANON)
        kernel.physmem.write(src, b"payload")
        kernel.llc.flush_frame(src)
        kernel.llc.flush_frame(dst)
        kernel.copy_page_cached(src, dst)
        assert kernel.physmem.read(dst) == b"payload"
        assert kernel.llc.contains_line(src * 4096)
        assert kernel.llc.contains_line(dst * 4096)
        kernel.free_frame(src)
        kernel.free_frame(dst)
