"""Round-trip tests for ``repro lint --fix`` (DET004 / API001).

The fixer's contract: every rewrite silences the finding it targets
(round-trip through the linter), a second run is a byte-for-byte no-op
(idempotence), suppressed lines are never touched, and rules without a
mechanical equivalent (``ATTACK_ENV_DEFAULTS``) are left alone.
"""

from __future__ import annotations

import textwrap

from repro.check import FIXABLE_RULES, fix_paths, fix_source, lint_source


def fix(source: str, rules: tuple[str, ...] = FIXABLE_RULES):
    return fix_source(textwrap.dedent(source), rules)


def det004_findings(source: str):
    return [
        finding
        for finding in lint_source(
            source, path="src/repro/core/x.py", module="repro.core.x"
        )
        if finding.rule_id in FIXABLE_RULES
    ]


class TestDet004Fix:
    def test_hash_call_becomes_crc32(self):
        fixed, fixes = fix("""\
            def derive(name):
                return hash(name)
        """)
        assert [f.rule_id for f in fixes] == ["DET004"]
        assert "zlib.crc32(repr(name).encode())" in fixed
        assert "import zlib" in fixed

    def test_round_trip_silences_the_finding(self):
        source = "def derive(name):\n    return hash(name)\n"
        assert det004_findings(source)
        fixed, _ = fix_source(source)
        assert det004_findings(fixed) == []

    def test_nested_hash_calls_reach_fixpoint(self):
        fixed, fixes = fix("""\
            def derive(a, b):
                return hash((hash(a), b))
        """)
        assert len(fixes) == 2
        assert "hash(" not in fixed
        assert det004_findings(fixed) == []

    def test_zlib_import_inserted_once_after_import_block(self):
        fixed, _ = fix("""\
            \"\"\"Docstring.\"\"\"
            import os
            import sys

            def derive(a, b):
                return hash(a) + hash(b)
        """)
        lines = fixed.splitlines()
        assert lines[:4] == [
            '"""Docstring."""', "import os", "import sys", "import zlib",
        ]
        assert fixed.count("import zlib") == 1

    def test_existing_zlib_import_not_duplicated(self):
        fixed, _ = fix("""\
            import zlib

            def derive(name):
                return hash(name)
        """)
        assert fixed.count("import zlib") == 1

    def test_hash_with_kwargs_or_arity_is_not_touched(self):
        source = textwrap.dedent("""\
            def derive(obj):
                return obj.hash(1)
        """)
        fixed, fixes = fix_source(source)
        assert fixes == []
        assert fixed == source


class TestApi001Fix:
    def test_use_site_rewritten(self):
        fixed, fixes = fix("""\
            def lookup(name):
                return EXPERIMENT_REGISTRY[name]
        """)
        assert [f.rule_id for f in fixes] == ["API001"]
        assert "EXPERIMENTS[name]" in fixed
        assert "EXPERIMENT_REGISTRY" not in fixed

    def test_import_alias_rewritten_to_import_form(self):
        fixed, _ = fix("""\
            from repro.harness.experiments import EXPERIMENT_REGISTRY

            def names():
                return list(EXPERIMENT_REGISTRY)
        """)
        assert (
            "from repro.harness.experiments import EXPERIMENTS" in fixed
        )
        assert "list(EXPERIMENTS)" in fixed

    def test_engine_factories_use_site_gets_call_form(self):
        fixed, _ = fix("""\
            def engines():
                return dict(ENGINE_FACTORIES)
        """)
        assert "dict(attack_engine_factories())" in fixed

    def test_attack_env_defaults_is_left_for_a_human(self):
        source = textwrap.dedent("""\
            def defaults():
                return dict(ATTACK_ENV_DEFAULTS)
        """)
        fixed, fixes = fix_source(source)
        assert fixes == []
        assert fixed == source


class TestFixerContracts:
    def test_idempotent(self):
        source = textwrap.dedent("""\
            def derive(name):
                return hash(name) + EXPERIMENT_REGISTRY["x"].seed
        """)
        once, first = fix_source(source)
        assert first
        twice, second = fix_source(once)
        assert second == []
        assert twice == once

    def test_suppressed_lines_are_never_rewritten(self):
        source = textwrap.dedent("""\
            def derive(name):
                a = hash(name)  # simlint: disable=DET004
                b = EXPERIMENT_REGISTRY  # simlint: disable=all
                return a, b
        """)
        fixed, fixes = fix_source(source)
        assert fixes == []
        assert fixed == source

    def test_unparseable_source_returned_unchanged(self):
        source = "def oops(:\n"
        fixed, fixes = fix_source(source)
        assert fixed == source
        assert fixes == []

    def test_rule_selection_limits_the_rewrites(self):
        source = textwrap.dedent("""\
            def derive(name):
                return hash(name) + EXPERIMENT_REGISTRY["x"].seed
        """)
        fixed, fixes = fix_source(source, ("API001",))
        assert {f.rule_id for f in fixes} == {"API001"}
        assert "hash(name)" in fixed

    def test_fix_paths_writes_in_place_and_skips_clean_files(
        self, tmp_path
    ):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x):\n    return hash(x)\n")
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        changed = fix_paths([dirty, clean])
        assert set(changed) == {str(dirty)}
        assert "zlib.crc32" in dirty.read_text()
        assert clean.read_text() == "VALUE = 1\n"
