"""Tests for the statistics, metrics and report-rendering helpers."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import count_huge_pages, fused_page_breakdown, take_sample
from repro.analysis.report import format_series, format_table
from repro.analysis.stats import (
    HAVE_SCIPY,
    distribution_summary,
    histogram,
    ks_2samp_pvalue,
    ks_uniform_pvalue,
)
from repro.fusion.ksm import Ksm
from repro.kernel.kernel import Kernel
from repro.params import PAGES_PER_HUGE_PAGE, SECOND

from tests.conftest import dup, fast_fusion, small_spec


class TestStats:
    needs_scipy = pytest.mark.skipif(
        not HAVE_SCIPY, reason="SciPy not installed"
    )

    @needs_scipy
    def test_ks_same_distribution(self):
        import random

        rng = random.Random(1)
        a = [rng.gauss(100, 10) for _ in range(200)]
        b = [rng.gauss(100, 10) for _ in range(200)]
        assert ks_2samp_pvalue(a, b) > 0.05

    @needs_scipy
    def test_ks_different_distribution(self):
        a = [100.0] * 100
        b = [500.0] * 100
        assert ks_2samp_pvalue(a, b) < 0.001

    @needs_scipy
    def test_ks_uniform_accepts_uniform(self):
        import random

        rng = random.Random(2)
        values = [rng.uniform(10, 20) for _ in range(500)]
        assert ks_uniform_pvalue(values, 10, 20) > 0.05

    @needs_scipy
    def test_ks_uniform_rejects_clustered(self):
        values = [10.1] * 200
        assert ks_uniform_pvalue(values, 10, 20) < 0.001

    def test_ks_uniform_bad_interval(self):
        with pytest.raises(ValueError):
            ks_uniform_pvalue([1.0], 5, 5)

    def test_histogram_bins(self):
        hist = histogram([0, 1, 2, 3, 4, 5, 6, 7, 8, 9], bins=5)
        assert len(hist) == 5
        assert sum(count for _edge, count in hist) == 10

    def test_histogram_degenerate(self):
        assert histogram([7, 7, 7]) == [(7.0, 3)]
        assert histogram([]) == []

    def test_summary_unimodal(self):
        summary = distribution_summary([100, 101, 102, 99, 100])
        assert summary.modes == 1
        assert summary.median == 100

    def test_summary_bimodal(self):
        summary = distribution_summary([100] * 50 + [5000] * 50)
        assert summary.modes == 2

    def test_summary_close_clusters_one_mode(self):
        # A 2% gap (e.g. DRAM row hit vs miss) is not a separate peak.
        summary = distribution_summary([4746] * 50 + [4841] * 50)
        assert summary.modes == 1


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[-1]
        assert "2.50" in text

    def test_format_table_title(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_format_series_merges_timelines(self):
        text = format_series(
            {"a": [(1.0, 10.0), (2.0, 20.0)], "b": [(1.0, 5.0)]},
            title="s",
        )
        assert "10.00" in text
        assert "-" in text  # missing b sample at t=2


class TestMetrics:
    def test_count_huge_pages(self):
        kernel = Kernel(small_spec(frames=16384), thp_fault_enabled=True)
        proc = kernel.create_process("p")
        vma = proc.mmap(PAGES_PER_HUGE_PAGE)
        assert count_huge_pages(kernel) == 0
        proc.write(vma.start, b"x")
        assert count_huge_pages(kernel) == 1

    def test_take_sample_fields(self):
        kernel = Kernel(small_spec())
        sample = take_sample(kernel)
        assert sample.saved_frames == 0
        assert sample.frames_in_use >= 16  # reserved kernel frames
        assert sample.t_s == 0.0

    def test_fused_breakdown_by_guest_kind(self):
        kernel = Kernel(small_spec())
        ksm = Ksm(fast_fusion())
        kernel.attach_fusion(ksm)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        va = a.mmap(4, mergeable=True)
        vb = b.mmap(4, mergeable=True)
        va.extra["guest_kind"] = "page_cache"
        vb.extra["guest_kind"] = "kernel"
        for index in range(4):
            a.write_page(va, index, dup("t3", index))
            b.write_page(vb, index, dup("t3", index))
        kernel.idle(2 * SECOND)
        breakdown = fused_page_breakdown(kernel)
        assert breakdown["page_cache"] == 4
        assert breakdown["kernel"] == 4
