"""simlint rule tests: one good + one bad fixture per rule, the
suppression mechanism, the JSON report schema, and the meta-test that
keeps ``src/`` itself clean."""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

from repro.check import (
    FLOW_RULES,
    IP_RULES,
    RACE_RULES,
    RULES,
    findings_to_json,
    lint_paths,
    lint_source,
    render_findings,
)
from repro.check.engine import LintResult, module_name_for
from repro.check.reporting import JSON_SCHEMA_VERSION

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def lint(source: str, module: str, rules: list[str] | None = None):
    return lint_source(textwrap.dedent(source), module=module, rule_ids=rules)


def rule_ids(findings) -> list[str]:
    return [finding.rule_id for finding in findings]


# ----------------------------------------------------------------------
# DET001 — wall clock
# ----------------------------------------------------------------------
class TestDet001WallClock:
    BAD = """
        import time
        def tick():
            return time.monotonic()
    """

    def test_flags_wall_clock_call(self):
        findings = lint(self.BAD, "repro.kernel.kernel", ["DET001"])
        assert rule_ids(findings) == ["DET001"]
        assert "time.monotonic" in findings[0].message

    def test_flags_datetime_now(self):
        findings = lint(
            """
            import datetime
            stamp = datetime.datetime.now()
            """,
            "repro.harness.experiments", ["DET001"],
        )
        assert rule_ids(findings) == ["DET001"]

    def test_flags_from_time_import(self):
        findings = lint(
            "from time import perf_counter\n", "repro.core.vusion", ["DET001"]
        )
        assert rule_ids(findings) == ["DET001"]

    def test_runner_and_benchmarks_exempt(self):
        for module in ("repro.runner.pool", "benchmarks.bench_scan"):
            assert lint(self.BAD, module, ["DET001"]) == []

    def test_simulated_clock_is_clean(self):
        clean = """
            def tick(kernel):
                return kernel.clock.now
        """
        assert lint(clean, "repro.kernel.kernel", ["DET001"]) == []


# ----------------------------------------------------------------------
# DET002 — global RNG
# ----------------------------------------------------------------------
class TestDet002GlobalRandom:
    def test_flags_global_random_call(self):
        findings = lint(
            """
            import random
            def jitter():
                return random.random()
            """,
            "repro.workloads.synthetic", ["DET002"],
        )
        assert rule_ids(findings) == ["DET002"]

    def test_flags_from_random_import(self):
        findings = lint(
            "from random import shuffle\n", "repro.attacks.dedup", ["DET002"]
        )
        assert rule_ids(findings) == ["DET002"]

    def test_seeded_rng_is_clean(self):
        clean = """
            import random
            def make_rng(seed):
                return random.Random(seed)
        """
        assert lint(clean, "repro.workloads.synthetic", ["DET002"]) == []


# ----------------------------------------------------------------------
# DET003 — unordered iteration in artifact paths
# ----------------------------------------------------------------------
class TestDet003UnorderedIteration:
    BAD = """
        def render(rows):
            out = []
            for key in rows.keys():
                out.append(key)
            return out
    """

    def test_flags_keys_iteration_in_report_path(self):
        findings = lint(self.BAD, "repro.analysis.report", ["DET003"])
        assert rule_ids(findings) == ["DET003"]

    def test_flags_set_literal_in_comprehension(self):
        findings = lint(
            "names = [n for n in {'b', 'a'}]\n",
            "repro.runner.artifacts", ["DET003"],
        )
        assert rule_ids(findings) == ["DET003"]

    def test_simulation_code_exempt(self):
        # Engines iterate sets freely; only artifact/report paths must sort.
        assert lint(self.BAD, "repro.fusion.ksm", ["DET003"]) == []

    def test_sorted_iteration_is_clean(self):
        clean = """
            def render(rows):
                return [key for key in sorted(rows)]
        """
        assert lint(clean, "repro.analysis.report", ["DET003"]) == []


# ----------------------------------------------------------------------
# DET004 — builtin hash()
# ----------------------------------------------------------------------
class TestDet004BuiltinHash:
    def test_flags_hash_call(self):
        findings = lint(
            "seed = hash('bench') & 0xFFFF\n",
            "repro.workloads.synthetic", ["DET004"],
        )
        assert rule_ids(findings) == ["DET004"]
        assert "PYTHONHASHSEED" in findings[0].message

    def test_crc32_is_clean(self):
        clean = """
            import zlib
            def stable_seed(name):
                return zlib.crc32(name.encode()) & 0xFFFF
        """
        assert lint(clean, "repro.workloads.synthetic", ["DET004"]) == []


# ----------------------------------------------------------------------
# MEM001 — frame-store internals
# ----------------------------------------------------------------------
class TestMem001FrameStoreInternals:
    BAD = """
        def smash(physmem, pfn, content):
            physmem._contents[pfn] = content
    """

    def test_flags_direct_contents_write(self):
        findings = lint(self.BAD, "repro.fusion.ksm", ["MEM001"])
        assert rule_ids(findings) == ["MEM001"]
        assert "_contents" in findings[0].message

    def test_repro_mem_and_tests_exempt(self):
        for module in ("repro.mem.physmem", "tests.test_kernel"):
            assert lint(self.BAD, module, ["MEM001"]) == []

    def test_api_access_is_clean(self):
        clean = """
            def smash(physmem, pfn, content):
                physmem.write(pfn, content)
        """
        assert lint(clean, "repro.fusion.ksm", ["MEM001"]) == []

    ARENA_BAD = """
        def leak_ref(physmem, content):
            return physmem.arena._intern(content)
    """

    def test_flags_arena_intern_outside_mem(self):
        findings = lint(self.ARENA_BAD, "repro.fusion.wpf", ["MEM001"])
        assert rule_ids(findings) == ["MEM001"]
        assert "_intern" in findings[0].message

    def test_flags_arena_refcount_tables(self):
        findings = lint(
            """
            def poke(arena, cid):
                arena._refcount[cid] += 1
                del arena._ids[arena._payloads[cid]]
            """,
            "repro.core.vusion", ["MEM001"],
        )
        assert rule_ids(findings) == ["MEM001"] * 3

    def test_arena_read_api_is_clean(self):
        clean = """
            def inspect(physmem, pfn):
                cid = physmem.content_id(pfn)
                return physmem.arena.refcount(cid), physmem.merge_key(pfn)
        """
        assert lint(clean, "repro.fusion.wpf", ["MEM001"]) == []

    def test_repro_mem_may_intern(self):
        assert lint(self.ARENA_BAD, "repro.mem.physmem", ["MEM001"]) == []


# ----------------------------------------------------------------------
# MEM002 — raw content comparison in fusion hot paths
# ----------------------------------------------------------------------
class TestMem002ContentCompare:
    BAD = """
        def revalidate(kernel, pfn, content):
            if kernel.physmem.read(pfn) != content:
                return None
            return pfn
    """

    def test_flags_read_comparison_in_fusion(self):
        findings = lint(self.BAD, "repro.fusion.ksm", ["MEM002"])
        assert rule_ids(findings) == ["MEM002"]
        assert "same_content" in findings[0].message

    def test_flags_equality_too(self):
        findings = lint(
            "ok = physmem.read(a) == physmem.read(b)\n",
            "repro.core.vusion", ["MEM002"],
        )
        assert rule_ids(findings) == ["MEM002"]

    def test_same_content_is_clean(self):
        clean = """
            def revalidate(kernel, pfn, content):
                if not kernel.physmem.same_content(pfn, content):
                    return None
                return pfn
        """
        assert lint(clean, "repro.fusion.ksm", ["MEM002"]) == []

    def test_merge_key_bucketing_is_clean(self):
        clean = """
            def bucket(physmem, pfns):
                groups = {}
                for pfn in pfns:
                    groups.setdefault(physmem.merge_key(pfn), []).append(pfn)
                return groups
        """
        assert lint(clean, "repro.fusion.wpf", ["MEM002"]) == []

    def test_tests_and_mem_exempt(self):
        for module in ("tests.test_physmem", "repro.mem.physmem",
                       "repro.attacks.dedup"):
            assert lint(self.BAD, module, ["MEM002"]) == []


# ----------------------------------------------------------------------
# MEM003 — per-frame Python sweeps in engine scan paths
# ----------------------------------------------------------------------
class TestMem003ScanLoops:
    BAD_REDUCTION = """
        def sharing_pairs(physmem, pfns, shared):
            return sum(physmem.refcount(pfn) for pfn in pfns) - shared
    """
    BAD_PROBE = """
        def stable_mutated(physmem, dirty):
            return any(physmem.is_fused(pfn) for pfn in dirty)
    """
    BAD_MAPPED_LOOP = """
        def zero_candidates(physmem):
            zeros = []
            for pfn in physmem.mapped_frames():
                if physmem.read(pfn) == b"":
                    zeros.append(pfn)
            return zeros
    """

    def test_flags_refcount_reduction(self):
        findings = lint(self.BAD_REDUCTION, "repro.fusion.ksm", ["MEM003"])
        assert rule_ids(findings) == ["MEM003"]
        assert "refcount_sum" in findings[0].message

    def test_flags_fused_probe(self):
        findings = lint(self.BAD_PROBE, "repro.fusion.incremental", ["MEM003"])
        assert rule_ids(findings) == ["MEM003"]
        assert "any_fused" in findings[0].message

    def test_flags_mapped_frames_loop(self):
        findings = lint(self.BAD_MAPPED_LOOP, "repro.core.vusion", ["MEM003"])
        assert "MEM003" in rule_ids(findings)
        assert "scan_kernel" in findings[0].message

    def test_flags_mapped_frames_comprehension(self):
        findings = lint(
            "zeros = [p for p in physmem.mapped_frames() if p in dirty]\n",
            "repro.fusion.wpf", ["MEM003"],
        )
        assert rule_ids(findings) == ["MEM003"]

    def test_batch_primitives_are_clean(self):
        clean = """
            def sharing_pairs(physmem, pfns, shared):
                return physmem.scan_kernel.refcount_sum(pfns) - shared

            def stable_mutated(physmem, dirty):
                return physmem.scan_kernel.any_fused(dirty)
        """
        assert lint(clean, "repro.fusion.ksm", ["MEM003"]) == []

    def test_non_frame_reductions_are_clean(self):
        clean = """
            def total(candidates):
                return sum(len(v) for v in candidates.values())
        """
        assert lint(clean, "repro.fusion.wpf", ["MEM003"]) == []

    def test_scan_kernel_and_tests_exempt(self):
        # The scalar reference implementation *is* the per-frame loop;
        # the rule stops engines from hand-rolling it, not repro.mem
        # from defining it.
        for module in ("repro.mem.scankernel", "tests.test_physmem",
                       "repro.kernel.kernel"):
            assert lint(self.BAD_REDUCTION, module, ["MEM003"]) == []


# ----------------------------------------------------------------------
# LAY001 — import layering
# ----------------------------------------------------------------------
class TestLay001Layering:
    def test_kernel_must_not_import_runner(self):
        findings = lint(
            "from repro.runner.pool import TaskPool\n",
            "repro.kernel.kernel", ["LAY001"],
        )
        assert rule_ids(findings) == ["LAY001"]
        assert "repro.runner.pool" in findings[0].message

    def test_attacks_must_not_import_harness(self):
        findings = lint(
            "import repro.harness.experiments\n",
            "repro.attacks.dedup", ["LAY001"],
        )
        assert rule_ids(findings) == ["LAY001"]

    def test_type_checking_imports_exempt(self):
        clean = """
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from repro.fusion.base import FusionEngine
        """
        assert lint(clean, "repro.kernel.kernel", ["LAY001"]) == []

    def test_downward_imports_are_clean(self):
        clean = """
            from repro.errors import ReproError
            from repro.mem.physmem import PhysicalMemory
        """
        assert lint(clean, "repro.kernel.kernel", ["LAY001"]) == []

    def test_seed_derivation_leaf_exempt_from_harness(self):
        # repro.runner.seeds is the runner's dependency-free leaf; the
        # spec layer shares its derivation (see LAYERING_EXEMPT).
        clean = "from repro.runner.seeds import derive_seed\n"
        assert lint(clean, "repro.harness.spec", ["LAY001"]) == []

    def test_other_runner_modules_still_forbidden_from_harness(self):
        findings = lint(
            "from repro.runner.pool import TaskPool\n",
            "repro.harness.fleet", ["LAY001"],
        )
        assert rule_ids(findings) == ["LAY001"]


# ----------------------------------------------------------------------
# API001 — removed deprecation shims stay removed
# ----------------------------------------------------------------------
class TestApi001RemovedShims:
    def test_flags_import_of_removed_registry(self):
        findings = lint(
            "from repro.harness.experiments import EXPERIMENT_REGISTRY\n",
            "repro.cli", ["API001"],
        )
        assert rule_ids(findings) == ["API001"]
        assert "EXPERIMENTS" in findings[0].message

    def test_flags_bare_name_use(self):
        findings = lint(
            "engine = ENGINE_FACTORIES['ksm']()\n",
            "repro.attacks.dedup", ["API001"],
        )
        assert rule_ids(findings) == ["API001"]

    def test_flags_attribute_access(self):
        findings = lint(
            """
            import repro.attacks.base as base
            table = base.ATTACK_ENV_DEFAULTS
            """,
            "tests.test_whatever", ["API001"],
        )
        assert rule_ids(findings) == ["API001"]

    def test_typed_replacements_are_clean(self):
        clean = """
            from repro.fusion.registry import attack_engine_factories
            from repro.harness.experiments import EXPERIMENTS
            factories = attack_engine_factories()
        """
        assert lint(clean, "repro.cli", ["API001"]) == []

    def test_old_names_are_gone_from_the_tree(self):
        # The satellite's proof: linting the real src/ tree with only
        # API001 enabled finds nothing to flag.
        result = lint_paths([str(SRC)], rule_ids=["API001"])
        assert result.findings == []


# ----------------------------------------------------------------------
# Suppression
# ----------------------------------------------------------------------
class TestSuppression:
    def test_line_suppression_honored(self):
        source = "seed = hash('x')  # simlint: disable=DET004\n"
        assert lint_source(source, module="repro.core.vusion") == []

    def test_disable_all(self):
        source = "seed = hash('x')  # simlint: disable=all\n"
        assert lint_source(source, module="repro.core.vusion") == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = "seed = hash('x')  # simlint: disable=DET001\n"
        findings = lint_source(source, module="repro.core.vusion")
        assert rule_ids(findings) == ["DET004"]


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
class TestReports:
    def make_result(self) -> LintResult:
        findings = lint_source(
            "seed = hash('x')\n", path="src/repro/core/x.py",
            module="repro.core.x",
        )
        return LintResult(findings=findings, files_scanned=1)

    def test_json_schema(self):
        document = json.loads(findings_to_json(self.make_result()))
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["clean"] is False
        assert document["files_scanned"] == 1
        assert document["counts"] == {"DET004": 1}
        (finding,) = document["findings"]
        assert set(finding) == {
            "rule", "severity", "path", "line", "col", "message", "engine",
            "qualname",
        }
        assert finding["engine"] == "ast"
        assert set(document["rules"]) == (
            set(RULES) | set(FLOW_RULES) | set(IP_RULES) | set(RACE_RULES)
        )

    def test_human_report_mentions_location_and_rule(self):
        text = render_findings(self.make_result())
        assert "src/repro/core/x.py:1:" in text
        assert "DET004" in text
        assert "1 finding(s)" in text

    def test_clean_summary(self):
        text = render_findings(LintResult(files_scanned=3))
        assert "clean: 3 file(s), 0 findings" in text


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
class TestEngine:
    def test_module_name_for(self):
        assert (
            module_name_for(pathlib.Path("src/repro/mem/physmem.py"))
            == "repro.mem.physmem"
        )
        assert (
            module_name_for(pathlib.Path("src/repro/check/__init__.py"))
            == "repro.check"
        )

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="NOPE999"):
            lint_source("x = 1\n", rule_ids=["NOPE999"])

    def test_lint_paths_reports_syntax_errors(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        bad = tmp_path / "broken.py"
        bad.write_text("def (\n")
        result = lint_paths([str(tmp_path)])
        assert result.files_scanned == 1
        assert len(result.errors) == 1
        assert not result.clean

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("seed = hash('x')\n")
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "DET004" in out


# ----------------------------------------------------------------------
# Meta: the repository itself lints clean, with no DET escape hatches
# ----------------------------------------------------------------------
class TestRepositoryIsClean:
    def test_src_lints_clean(self):
        result = lint_paths([str(SRC)])
        assert result.errors == []
        assert result.findings == [], render_findings(result)

    def test_no_det_suppressions_in_src(self):
        # A suppression only counts when attached to a code line; the
        # lint engine documents the syntax in comments, which is fine.
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            for number, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                code = line.split("#", 1)[0].strip()
                if not code:
                    continue
                if "simlint: disable=DET" in line or (
                    "simlint: disable=all" in line
                ):
                    offenders.append(
                        f"{path.relative_to(REPO_ROOT)}:{number}"
                    )
        assert offenders == []
