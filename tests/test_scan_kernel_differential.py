"""Differential proof that the batch scan kernel is transparent.

The batch kernel changes *how* scan-pass questions are answered
(vectorized sweeps over the cid / generation / refcount columns
instead of per-frame Python loops) but must not change a single
observable of the simulation: simulated time, merge behaviour, attack
verdicts and runner artifacts have to be byte-identical to the scalar
reference loops.  Same discipline as
``tests/test_store_differential.py``, four layers:

* lockstep primitive sequences over randomized frame traffic,
  comparing every scan-kernel answer (and every
  :class:`~repro.mem.physmem.PhysicalMemory` observable) after every
  operation;
* full kernels under **all five fusion engines** — KSM, WPF, VUsion,
  zero-page, memory combining — running both the scripted
  duplicate-heavy workload and hypothesis-randomized traffic,
  checkpointing clock, savings, samples and frame layout;
* the runner: ``execute_task`` payloads (experiments and Table 1
  attack cells) rendered to canonical JSON under each kernel;
* FrameSan-sanitized runs, which must also be identical — and end
  with a clean ledger audit under either kernel.

The mutation meta-test (``tests/test_scan_kernel_mutations.py``)
plants boundary bugs into the kernel source and checks this suite's
probes catch every one.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kernel.kernel import Kernel
from repro.mem.content import tagged_content
from repro.mem.physmem import PhysicalMemory
from repro.mem.scankernel import SCAN_KERNEL_ENV
from repro.params import MS, MachineSpec, PAGE_SIZE
from repro.runner import canonical_json, execute_task

from tests.test_fingerprint_differential import ENGINES
from tests.test_store_differential import (
    RUNNER_TASKS,
    checkpoint,
    observables,
    scripted_workload,
)

KERNELS = ("scalar", "batch")

# ----------------------------------------------------------------------
# Layer 1: lockstep primitives under randomized frame traffic
# ----------------------------------------------------------------------

RAW_FRAMES = 24

raw_op = st.one_of(
    st.tuples(st.just("write"), st.integers(0, RAW_FRAMES - 1),
              st.integers(0, 7)),
    st.tuples(st.just("copy"), st.integers(0, RAW_FRAMES - 1),
              st.integers(0, RAW_FRAMES - 1)),
    st.tuples(st.just("corrupt"), st.integers(0, RAW_FRAMES - 1),
              st.integers(0, PAGE_SIZE - 1)),
    st.tuples(st.just("ref"), st.integers(0, RAW_FRAMES - 1), st.just(0)),
    st.tuples(st.just("pin"), st.integers(0, RAW_FRAMES - 1), st.just(0)),
)

#: A probe batch sweeping all frames with duplicates and reversals,
#: so grouping order and within-group order are both exercised.
PROBE_PFNS = (
    list(range(RAW_FRAMES))
    + list(range(RAW_FRAMES - 1, -1, -1))
    + [0, RAW_FRAMES // 2, 0]
)


def primitive_answers(physmem: PhysicalMemory, snapshot: list[int]) -> tuple:
    kernel = physmem.scan_kernel
    return (
        kernel.zero_frames(PROBE_PFNS),
        list(kernel.group_by_content(PROBE_PFNS).values()),
        kernel.generation_snapshot(PROBE_PFNS),
        kernel.changed_since(list(range(RAW_FRAMES)), snapshot),
        kernel.digest_sweep(PROBE_PFNS),
        kernel.refcount_sum(PROBE_PFNS),
        kernel.any_fused(PROBE_PFNS),
        kernel.dirty_intersection(PROBE_PFNS, set(range(0, RAW_FRAMES, 3))),
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=st.lists(raw_op, min_size=1, max_size=60))
def test_raw_lockstep(ops):
    """Both kernels answer identically after every operation."""
    machines = {
        kind: PhysicalMemory(RAW_FRAMES, scan_kernel=kind) for kind in KERNELS
    }
    baseline = {
        kind: machines[kind].scan_kernel.generation_snapshot(
            list(range(RAW_FRAMES))
        )
        for kind in KERNELS
    }
    assert baseline["scalar"] == baseline["batch"]
    for action, a, b in ops:
        for physmem in machines.values():
            if action == "write":
                physmem.write(a, tagged_content("kdiff", b))
            elif action == "copy":
                physmem.copy(a, b)
            elif action == "corrupt":
                physmem.corrupt_bit(a, b, b % 8)
            elif action == "ref":
                physmem.get_ref(a)
            elif action == "pin":
                if physmem.is_fused(a):
                    physmem.unpin_fused(a)
                else:
                    physmem.pin_fused(a)
        scalar = primitive_answers(machines["scalar"], baseline["scalar"])
        batch = primitive_answers(machines["batch"], baseline["batch"])
        assert scalar == batch
        assert observables(machines["scalar"]) == observables(machines["batch"])
    # Group keys are backend identities (cids here), so they are only
    # comparable *within* one machine: check the key->content mapping.
    for physmem in machines.values():
        for key, members in (
            physmem.scan_kernel.group_by_content(PROBE_PFNS).items()
        ):
            contents = {
                physmem.peek_content(PROBE_PFNS[i]) for i in members
            }
            assert len(contents) == 1


# ----------------------------------------------------------------------
# Layer 2: full kernels under every engine, scripted and randomized
# ----------------------------------------------------------------------


def build_kernel(engine_name: str, kind: str, sanitize: bool) -> Kernel:
    spec = MachineSpec(total_frames=1024, seed=1017, scan_kernel=kind)
    kernel = Kernel(spec, sanitize=sanitize or None)
    kernel.attach_fusion(ENGINES[engine_name]())
    return kernel


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_engine_runs_are_identical_across_kernels(engine_name):
    """Same engine, same seed, same workload: every checkpoint equal."""
    kernels = {k: build_kernel(engine_name, k, sanitize=False) for k in KERNELS}
    runs = {k: scripted_workload(kernels[k]) for k in KERNELS}
    for labels in zip(*runs.values()):
        assert labels[0] == labels[1]
        scalar_state = checkpoint(kernels["scalar"])
        batch_state = checkpoint(kernels["batch"])
        assert scalar_state == batch_state, (
            f"{engine_name} diverged at checkpoint {labels[0]!r}"
        )


NUM_PROCS = 2
PAGES_PER_PROC = 10

random_traffic = st.lists(
    st.tuples(
        st.integers(0, NUM_PROCS - 1),
        st.integers(0, PAGES_PER_PROC - 1),
        st.integers(0, 3),
        st.integers(1, 80),
    ),
    min_size=1,
    max_size=25,
)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(traffic=random_traffic, engine_index=st.integers(0, len(ENGINES) - 1))
def test_randomized_traffic_is_identical_across_kernels(traffic, engine_index):
    """Hypothesis-driven write/idle interleavings stay in lockstep."""
    engine_name = sorted(ENGINES)[engine_index]
    kernels = {k: build_kernel(engine_name, k, sanitize=False) for k in KERNELS}
    views = {}
    for kind, kernel in kernels.items():
        processes = [
            kernel.create_process(f"p{i}") for i in range(NUM_PROCS)
        ]
        vmas = [p.mmap(PAGES_PER_PROC, mergeable=True) for p in processes]
        views[kind] = (kernel, processes, vmas)
    for proc_index, page_index, tag, idle_ms in traffic:
        for kernel, processes, vmas in views.values():
            process = processes[proc_index]
            vaddr = vmas[proc_index].start + page_index * PAGE_SIZE
            process.write(vaddr, tagged_content("traffic", tag))
            kernel.idle(idle_ms * MS)
        assert checkpoint(kernels["scalar"]) == checkpoint(kernels["batch"])


# ----------------------------------------------------------------------
# Layer 3: runner artifacts and Table 1 attack verdicts
# ----------------------------------------------------------------------


def run_with_kernel(monkeypatch, spec, kind: str) -> dict:
    monkeypatch.setenv(SCAN_KERNEL_ENV, kind)
    return execute_task(spec, seed=1017)


@pytest.mark.parametrize("task_name", sorted(RUNNER_TASKS))
def test_runner_artifacts_byte_identical(task_name, monkeypatch):
    """Canonical artifact JSON is byte-for-byte kernel-independent."""
    spec = RUNNER_TASKS[task_name]
    payloads = {
        kind: run_with_kernel(monkeypatch, spec, kind) for kind in KERNELS
    }
    assert canonical_json(payloads["scalar"]) == canonical_json(
        payloads["batch"]
    )
    if spec.kind == "attack":
        # The Table 1 verdict itself, called out explicitly: attack
        # outcomes cannot depend on how the scan loop is vectorized.
        assert payloads["scalar"]["success"] == payloads["batch"]["success"]
        assert (
            payloads["scalar"]["mitigated_by"]
            == payloads["batch"]["mitigated_by"]
        )


# ----------------------------------------------------------------------
# Layer 4: FrameSan-sanitized runs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_sanitized_runs_are_identical_and_audit_clean(engine_name):
    """FrameSan on: still lockstep-identical (the batch kernel must
    delegate content reads so access hooks fire in scalar order), and
    the end-of-run ledger audit is clean under both kernels."""
    kernels = {k: build_kernel(engine_name, k, sanitize=True) for k in KERNELS}
    runs = {k: scripted_workload(kernels[k]) for k in KERNELS}
    for _labels in zip(*runs.values()):
        assert checkpoint(kernels["scalar"]) == checkpoint(kernels["batch"])
    audits = {}
    for kind, kernel in kernels.items():
        assert kernel.sanitizer is not None
        kernel.sanitizer.assert_clean(kernel.fusion)
        audits[kind] = dict(kernel.sanitizer.stats)
    # Identical ledgers, not merely both clean: the sanitizer saw the
    # same accesses in the same quantities under either kernel.
    assert audits["scalar"] == audits["batch"]


# ----------------------------------------------------------------------
# Selection plumbing
# ----------------------------------------------------------------------


def test_spec_and_env_selection(monkeypatch):
    monkeypatch.delenv(SCAN_KERNEL_ENV, raising=False)
    assert PhysicalMemory(8).scan_kernel_kind == "batch"
    assert PhysicalMemory(8, scan_kernel="scalar").scan_kernel_kind == "scalar"
    monkeypatch.setenv(SCAN_KERNEL_ENV, "scalar")
    assert PhysicalMemory(8).scan_kernel_kind == "scalar"
    assert PhysicalMemory(8, scan_kernel="batch").scan_kernel_kind == "batch"
    monkeypatch.setenv(SCAN_KERNEL_ENV, "bogus")
    assert PhysicalMemory(8).scan_kernel_kind == "batch"
    with pytest.raises(ValueError):
        PhysicalMemory(8, scan_kernel="simd")


def test_batch_kernel_on_legacy_store_is_scalar_equivalent():
    legacy = PhysicalMemory(RAW_FRAMES, frame_store="legacy",
                            scan_kernel="batch")
    columnar = PhysicalMemory(RAW_FRAMES, scan_kernel="batch")
    assert legacy.scan_kernel.backend == "scalar"
    for physmem in (legacy, columnar):
        physmem.write(1, tagged_content("legacy", 1))
        physmem.write(2, tagged_content("legacy", 1))
    assert legacy.scan_kernel.zero_frames(PROBE_PFNS) == (
        columnar.scan_kernel.zero_frames(PROBE_PFNS)
    )
    assert list(legacy.scan_kernel.group_by_content(PROBE_PFNS).values()) == (
        list(columnar.scan_kernel.group_by_content(PROBE_PFNS).values())
    )
    assert legacy.digests_many(PROBE_PFNS) == columnar.digests_many(PROBE_PFNS)
