"""Unit tests for the physical frame store."""

from __future__ import annotations

import pytest

from repro.errors import InvalidFrameError
from repro.mem.content import flip_bit, make_content
from repro.mem.physmem import FrameType, PhysicalMemory


@pytest.fixture
def mem() -> PhysicalMemory:
    return PhysicalMemory(128)


class TestContents:
    def test_initially_zero(self, mem):
        assert mem.read(5) == b""

    def test_write_read(self, mem):
        mem.write(3, b"hello")
        assert mem.read(3) == b"hello"

    def test_copy(self, mem):
        mem.write(1, b"data")
        mem.copy(1, 2)
        assert mem.read(2) == b"data"

    def test_corrupt_bit_bypasses_everything(self, mem):
        mem.write(7, b"\xff")
        mem.corrupt_bit(7, 0, 0)
        assert mem.read(7) == b"\xfe"

    def test_corrupt_bit_matches_flip_bit(self, mem):
        mem.write(7, b"abc")
        mem.corrupt_bit(7, 100, 3)
        assert mem.read(7) == flip_bit(make_content(b"abc"), 100, 3)

    def test_version_bumps_on_stores_only(self, mem):
        v0 = mem.version(9)
        mem.write(9, b"a")
        assert mem.version(9) == v0 + 1
        mem.copy(0, 9)
        assert mem.version(9) == v0 + 2
        # Rowhammer corruption is not a recharge: version unchanged.
        mem.corrupt_bit(9, 0, 0)
        assert mem.version(9) == v0 + 2

    def test_bad_pfn_rejected(self, mem):
        with pytest.raises(InvalidFrameError):
            mem.read(128)
        with pytest.raises(InvalidFrameError):
            mem.write(-1, b"")


class TestRefcounts:
    def test_get_put(self, mem):
        mem.get_ref(4)
        mem.get_ref(4)
        assert mem.refcount(4) == 2
        assert mem.put_ref(4) == 1
        assert mem.put_ref(4) == 0

    def test_underflow_raises(self, mem):
        with pytest.raises(InvalidFrameError):
            mem.put_ref(4)


class TestRmap:
    def test_add_remove(self, mem):
        mem.rmap_add(10, 1, 0x1000)
        mem.rmap_add(10, 2, 0x2000)
        assert mem.rmap(10) == {(1, 0x1000), (2, 0x2000)}
        mem.rmap_remove(10, 1, 0x1000)
        assert mem.rmap(10) == {(2, 0x2000)}

    def test_remove_missing_raises(self, mem):
        with pytest.raises(InvalidFrameError):
            mem.rmap_remove(10, 1, 0x1000)

    def test_mapped_frames_sorted(self, mem):
        mem.rmap_add(20, 1, 0)
        mem.rmap_add(5, 1, 0)
        assert list(mem.mapped_frames()) == [5, 20]


class TestTypesAndAccounting:
    def test_default_free(self, mem):
        assert mem.frame_type(0) is FrameType.FREE
        assert mem.frames_in_use() == 0

    def test_in_use_accounting(self, mem):
        mem.set_frame_type(1, FrameType.ANON)
        mem.set_frame_type(2, FrameType.PAGE_CACHE)
        assert mem.frames_in_use() == 2
        histogram = mem.type_histogram()
        assert histogram[FrameType.ANON] == 1
        assert histogram[FrameType.FREE] == 126

    def test_fusion_pinning(self, mem):
        mem.pin_fused(3)
        assert mem.is_fused(3)
        mem.unpin_fused(3)
        assert not mem.is_fused(3)
        mem.unpin_fused(3)  # idempotent
