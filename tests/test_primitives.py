"""Tests for attacker-side measurement primitives."""

from __future__ import annotations

from repro.attacks.base import AttackEnvironment
from repro.attacks.primitives import (
    CacheProbe,
    TlbEvictionSet,
    calibrate_read_baseline,
    calibrate_write_baseline,
    write_unique,
)


def make_env():
    return AttackEnvironment("none", frames=16384)


class TestCalibration:
    def test_write_baseline_is_warm(self):
        env = make_env()
        baseline = calibrate_write_baseline(env.attacker)
        # A warm write: TLB hit + LLC hit territory, far below a fault.
        assert baseline < env.kernel.costs.fault_trap

    def test_read_baseline_is_warm(self):
        env = make_env()
        baseline = calibrate_read_baseline(env.attacker)
        assert baseline < env.kernel.costs.fault_trap


class TestWriteUnique:
    def test_contents_distinct(self):
        env = make_env()
        vma = env.attacker.mmap(32, mergeable=True)
        contents = write_unique(env.attacker, vma, env.rng)
        assert len(set(contents)) == 32

    def test_readback_matches(self):
        env = make_env()
        vma = env.attacker.mmap(8, mergeable=True)
        contents = write_unique(env.attacker, vma, env.rng)
        for index, content in enumerate(contents):
            assert env.attacker.read(vma.start + index * 4096).content == content


class TestTlbEvictionSet:
    def test_eviction_forces_walks(self):
        env = make_env()
        target = env.attacker.mmap(1)
        env.attacker.write(target.start, b"t")
        evictor = TlbEvictionSet(env.attacker, pages=256)
        env.attacker.read(target.start)
        warm = env.attacker.read(target.start)
        assert warm.tlb_hit
        evictor.evict()
        cold = env.attacker.read(target.start)
        assert not cold.tlb_hit


class TestCacheProbe:
    def test_threshold_separates_hit_miss(self):
        env = make_env()
        probe = CacheProbe(env.attacker, pool_pages=512)
        costs = env.kernel.costs
        assert probe.miss_threshold > costs.llc_hit
        assert probe.miss_threshold < costs.llc_hit + costs.dram_row_miss + 100

    def test_pool_evicts_target(self):
        env = make_env()
        probe = CacheProbe(env.attacker, pool_pages=4096)
        target = env.attacker.mmap(1)
        env.attacker.write(target.start, b"t")
        assert probe.evicts(probe.pool_addresses(), target.start)

    def test_small_set_does_not_evict(self):
        env = make_env()
        probe = CacheProbe(env.attacker, pool_pages=2048)
        target = env.attacker.mmap(1)
        env.attacker.write(target.start, b"t")
        assert not probe.evicts(probe.pool_addresses()[:8], target.start)

    def test_eviction_set_reduction(self):
        env = make_env()
        probe = CacheProbe(env.attacker, pool_pages=4096)
        target = env.attacker.mmap(1)
        env.attacker.write(target.start, b"t")
        eviction_set = probe.build_eviction_set(target.start)
        assert eviction_set is not None
        assert len(eviction_set) < 4096 // 4  # substantially reduced
        assert probe.evicts(eviction_set, target.start)

    def test_prime_probe_detects_conflict(self):
        env = make_env()
        probe = CacheProbe(env.attacker, pool_pages=4096)
        target = env.attacker.mmap(1)
        env.attacker.write(target.start, b"t")
        eviction_set = probe.build_eviction_set(target.start)
        probe.prime(eviction_set)
        env.attacker.read(target.start)  # evicts one primed line
        assert probe.probe(eviction_set) > 0

    def test_prime_probe_clean_without_conflict(self):
        env = make_env()
        probe = CacheProbe(env.attacker, pool_pages=4096)
        target = env.attacker.mmap(1)
        env.attacker.write(target.start, b"t")
        eviction_set = probe.build_eviction_set(target.start)
        probe.prime(eviction_set)
        # Touch nothing in that set: the probe must come back clean.
        assert probe.probe(eviction_set) == 0
