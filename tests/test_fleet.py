"""Fleet generator + streaming driver: plan determinism, the streaming
window, spec-vs-imperative equivalence, runner byte-identity, and the
paper's probe asymmetry at fleet scale."""

from __future__ import annotations

import pytest

from repro.harness.fleet import (
    FLEET_PRESETS,
    FleetDriver,
    fleet_images,
    generate_plan,
    run_fleet,
)
from repro.harness.scenario import Scenario, SystemConfig
from repro.harness.spec import FleetSpec
from repro.runner import RunnerConfig, TaskSpec, canonical_json, run_tasks


def smoke_spec(system: str = "ksm", seed: int = 1017):
    return FLEET_PRESETS["smoke"].spec(system=system, seed=seed)


@pytest.fixture(scope="module")
def ksm_result():
    return run_fleet(smoke_spec("ksm"))


@pytest.fixture(scope="module")
def vusion_result():
    return run_fleet(smoke_spec("vusion"))


# ----------------------------------------------------------------------
# Plan generation
# ----------------------------------------------------------------------
class TestGeneratePlan:
    def test_same_spec_same_plan(self):
        assert generate_plan(smoke_spec()) == generate_plan(smoke_spec())

    def test_seed_changes_plan(self):
        a = generate_plan(smoke_spec(seed=1))
        b = generate_plan(smoke_spec(seed=2))
        assert a != b

    def test_plan_covers_the_fleet_in_arrival_order(self):
        spec = smoke_spec()
        plan = generate_plan(spec)
        assert len(plan) == spec.fleet.vms
        arrivals = [vm.arrival_ns for vm in plan]
        assert arrivals == sorted(arrivals)
        assert all(vm.lifetime_ns > 0 for vm in plan)

    def test_roles_follow_the_tenant_mix(self):
        spec = smoke_spec()
        roles = [vm.role for vm in generate_plan(spec)]
        fleet = spec.fleet
        assert roles.count("adversarial") == round(
            fleet.vms * fleet.adversarial_fraction)
        assert roles.count("active") == round(fleet.vms
                                              * fleet.active_fraction)

    def test_per_vm_seeds_come_from_the_spec(self):
        spec = smoke_spec()
        for vm in generate_plan(spec):
            assert vm.seed == spec.vm_seed(vm.index)


class TestFleetImages:
    def test_registry_size_and_page_budget(self):
        fleet = FleetSpec(image_families=4, pages_per_vm=448)
        images = fleet_images(fleet)
        assert len(images) == 4
        for image in images:
            assert image.total_pages == fleet.pages_per_vm

    def test_families_cycle_the_distro_catalogue(self):
        images = fleet_images(FleetSpec(image_families=3))
        assert len({image.distro for image in images}) == 3


# ----------------------------------------------------------------------
# Streaming execution
# ----------------------------------------------------------------------
class TestStreaming:
    def test_window_respects_max_resident(self, ksm_result):
        spec = smoke_spec()
        totals = ksm_result.totals
        assert totals["booted_vms"] == spec.fleet.vms
        assert totals["retired_vms"] == spec.fleet.vms
        assert totals["peak_resident_vms"] <= spec.fleet.max_resident
        assert all(s.resident <= spec.fleet.max_resident
                   for s in ksm_result.samples)

    def test_retirement_frees_frames(self, ksm_result):
        totals = ksm_result.totals
        # Every VM retired; the machine drains back well below its peak.
        assert totals["final_frames_in_use"] < totals["peak_frames_in_use"] / 2

    def test_peak_frames_bounded_by_window_not_fleet_size(self, ksm_result):
        spec = smoke_spec()
        window_pages = spec.fleet.max_resident * spec.fleet.pages_per_vm
        # Peak usage tracks the co-resident window (plus pool/THP slack),
        # not the cumulative booted-page count.
        assert ksm_result.totals["peak_frames_in_use"] <= spec.frames
        assert ksm_result.totals["booted_pages"] > window_pages

    def test_scan_overhead_is_accounted(self, ksm_result, vusion_result):
        assert ksm_result.totals["scan_ns"] > 0
        assert "ksmd" in ksm_result.totals["daemon_ns"] or \
               ksm_result.totals["daemon_ns"]
        assert vusion_result.totals["scan_ns"] > 0

    def test_samples_are_monotone_in_time(self, ksm_result):
        times = [s.t_ns for s in ksm_result.samples]
        assert times == sorted(times)
        assert len(times) >= 3


# ----------------------------------------------------------------------
# Spec-driven == imperative (the API-redesign acceptance gate)
# ----------------------------------------------------------------------
class TestSpecImperativeDifferential:
    @pytest.mark.parametrize("system", ["ksm", "vusion"])
    def test_byte_identical_results(self, system):
        spec = smoke_spec(system)
        declarative = FleetDriver(spec).run()
        imperative_scenario = Scenario(
            SystemConfig.preset(system), frames=spec.frames, seed=spec.seed
        )
        imperative = FleetDriver(spec, scenario=imperative_scenario).run()
        assert canonical_json(declarative.to_payload()) == \
               canonical_json(imperative.to_payload())

    def test_rerun_of_same_spec_is_byte_identical(self, ksm_result):
        again = run_fleet(smoke_spec("ksm"))
        assert canonical_json(again.to_payload()) == \
               canonical_json(ksm_result.to_payload())


class TestRunnerDeterminism:
    TASKS = [
        TaskSpec.fleet("smoke", system="ksm"),
        TaskSpec.fleet("smoke", system="vusion"),
    ]

    def test_parallel_matches_serial(self):
        serial = run_tasks(self.TASKS, root_seed=1017,
                           config=RunnerConfig(jobs=1))
        parallel = run_tasks(self.TASKS, root_seed=1017,
                             config=RunnerConfig(jobs=2))
        assert [canonical_json(r.payload) for r in serial] == \
               [canonical_json(r.payload) for r in parallel]
        assert all(r.payload["type"] == "fleet" for r in serial)


# ----------------------------------------------------------------------
# The paper's asymmetry, measured at fleet scale
# ----------------------------------------------------------------------
class TestProbeAsymmetry:
    def test_ksm_leaks_vusion_blind(self, ksm_result, vusion_result):
        assert ksm_result.totals["probes"] > 0
        assert vusion_result.totals["probes"] > 0
        # KSM: the candidate's CoW break is distinguishable from the
        # control's plain store.  VUsion: both pages are (fake-)merged
        # and time identically — the adversary measures nothing.
        assert ksm_result.totals["probe_hits"] > 0
        assert vusion_result.totals["probe_hits"] == 0

    def test_both_systems_still_save_memory(self, ksm_result, vusion_result):
        assert ksm_result.totals["peak_saved_frames"] > 0
        assert vusion_result.totals["peak_saved_frames"] > 0
