"""ScenarioSpec serialization contract: JSON round-trips byte for byte,
validation rejects malformed documents, the serialized schema is pinned
by a golden file, and derived seeds are stable and independent."""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.harness.scenario import PRESETS, SystemConfig
from repro.harness.spec import (
    SPEC_VERSION,
    FleetSpec,
    ScenarioSpec,
    ScheduleSpec,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

GOLDEN = pathlib.Path(__file__).parent / "data" / "scenario_spec_schema.golden.json"


def smoke_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="unit",
        system=SystemConfig.preset("ksm"),
        fleet=FleetSpec(vms=4, pages_per_vm=64, max_resident=2),
        frames=2048,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# ----------------------------------------------------------------------
# Round-trip property
# ----------------------------------------------------------------------
def fleet_specs() -> st.SearchStrategy[FleetSpec]:
    def build(vms, families, pages, mix, arrival, lifetime, jitter, resident):
        total = sum(mix)
        return FleetSpec(
            vms=vms,
            image_families=families,
            pages_per_vm=pages,
            idle_fraction=mix[0] / total,
            active_fraction=mix[1] / total,
            adversarial_fraction=mix[2] / total,
            arrival_interval_ns=arrival,
            lifetime_ns=lifetime,
            churn_jitter=jitter,
            max_resident=resident,
        )

    return st.builds(
        build,
        vms=st.integers(1, 64),
        families=st.integers(1, 8),
        pages=st.integers(16, 64),
        mix=st.tuples(st.integers(0, 10), st.integers(0, 10),
                      st.integers(0, 10)).filter(lambda m: sum(m) > 0),
        arrival=st.integers(1, 10**9),
        lifetime=st.integers(1, 10**10),
        jitter=st.floats(0.0, 0.99, allow_nan=False),
        resident=st.integers(1, 16),
    )


def schedule_specs() -> st.SearchStrategy[ScheduleSpec]:
    def build(chunk, tick, sample_mult, settle, ops, probes):
        return ScheduleSpec(
            boot_chunk=chunk,
            tick_ns=tick,
            sample_interval_ns=tick * sample_mult,
            settle_ns=settle,
            active_ops=ops,
            adversary_probes=probes,
        )

    return st.builds(
        build,
        chunk=st.integers(1, 8),
        tick=st.integers(1, 10**9),
        sample_mult=st.integers(1, 8),
        settle=st.integers(0, 10**10),
        ops=st.integers(0, 16),
        probes=st.integers(0, 16),
    )


class TestJsonRoundTrip:
    @given(
        fleet=fleet_specs(),
        schedule=schedule_specs(),
        system=st.sampled_from(sorted(PRESETS)),
        seed=st.integers(0, 2**63 - 1),
    )
    def test_round_trip_is_byte_identical(self, fleet, schedule, system, seed):
        spec = ScenarioSpec(
            name="prop",
            system=SystemConfig.preset(system),
            fleet=fleet,
            schedule=schedule,
            frames=max(1024, min(fleet.vms, fleet.max_resident)
                       * fleet.pages_per_vm),
            seed=seed,
        )
        text = spec.to_json()
        revived = ScenarioSpec.from_json(text)
        assert revived == spec
        assert revived.to_json() == text

    def test_preset_string_system_loads(self):
        document = smoke_spec().to_dict()
        document["system"] = "vusion"
        spec = ScenarioSpec.from_dict(document)
        assert spec.system == SystemConfig.preset("vusion")
        # ...and re-serializes to the expanded form, which round-trips.
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_sections_get_defaults(self):
        spec = ScenarioSpec.from_dict({"name": "mini", "system": "ksm"})
        assert spec.fleet == FleetSpec()
        assert spec.schedule == ScheduleSpec()
        assert spec.frames == 32768

    def test_json_tuples_revive_as_tuples(self):
        # JSON has no tuple type; loader restores lists to tuples so the
        # frozen dataclasses stay hashable.
        document = smoke_spec().to_dict()
        revived = ScenarioSpec.from_dict(json.loads(json.dumps(document)))
        assert revived == smoke_spec()


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_unknown_top_level_key_rejected(self):
        document = smoke_spec().to_dict()
        document["fleeet"] = {}
        with pytest.raises(ValueError, match="unknown key"):
            ScenarioSpec.from_dict(document)

    def test_unknown_section_key_rejected(self):
        document = smoke_spec().to_dict()
        document["fleet"]["vm_count"] = 3
        with pytest.raises(ValueError, match="unknown fleet key"):
            ScenarioSpec.from_dict(document)

    def test_version_mismatch_rejected(self):
        document = smoke_spec().to_dict()
        document["version"] = SPEC_VERSION + 1
        with pytest.raises(ValueError, match="unsupported spec version"):
            ScenarioSpec.from_dict(document)

    def test_missing_name_rejected(self):
        document = smoke_spec().to_dict()
        del document["name"]
        with pytest.raises(ValueError, match="missing required key 'name'"):
            ScenarioSpec.from_dict(document)

    def test_missing_system_rejected(self):
        with pytest.raises(ValueError, match="missing required key 'system'"):
            ScenarioSpec.from_dict({"name": "x"})

    def test_bad_fractions_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            FleetSpec(idle_fraction=0.5, active_fraction=0.5,
                      adversarial_fraction=0.5)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FleetSpec(idle_fraction=1.5, active_fraction=-0.5,
                      adversarial_fraction=0.0)

    def test_sample_interval_below_tick_rejected(self):
        with pytest.raises(ValueError, match="sample_interval_ns"):
            ScheduleSpec(tick_ns=100, sample_interval_ns=50)

    def test_resident_pages_must_fit_machine(self):
        with pytest.raises(ValueError, match="exceed machine frames"):
            smoke_spec(frames=1024,
                       fleet=FleetSpec(vms=8, pages_per_vm=256,
                                       max_resident=8))

    def test_incomplete_system_section_reports_value_error(self):
        document = smoke_spec().to_dict()
        document["system"] = {"engine": "ksm"}  # label missing
        with pytest.raises(ValueError, match="bad system section"):
            ScenarioSpec.from_dict(document)

    def test_unknown_system_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown system preset"):
            SystemConfig.preset("ballooning")


# ----------------------------------------------------------------------
# System presets
# ----------------------------------------------------------------------
class TestSystemPresets:
    def test_presets_cover_the_papers_four_columns(self):
        assert set(PRESETS) == {"nodedup", "ksm", "vusion", "vusion_thp"}

    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_preset_round_trips_through_name(self, name):
        config = SystemConfig.preset(name)
        assert config.preset_name == name
        assert config == PRESETS[name]

    def test_custom_config_has_no_preset_name(self):
        custom = SystemConfig.preset("ksm").with_(pages_per_scan=99)
        assert custom.preset_name is None


# ----------------------------------------------------------------------
# Derived seeds
# ----------------------------------------------------------------------
class TestDerivedSeeds:
    def test_vm_seeds_are_deterministic(self):
        a, b = smoke_spec(), smoke_spec()
        assert [a.vm_seed(i) for i in range(8)] == \
               [b.vm_seed(i) for i in range(8)]

    def test_vm_seeds_are_pairwise_distinct(self):
        seeds = [smoke_spec().vm_seed(i) for i in range(32)]
        assert len(set(seeds)) == len(seeds)

    def test_seeds_depend_on_root_seed_and_name(self):
        base = smoke_spec()
        assert base.vm_seed(0) != base.with_(seed=base.seed + 1).vm_seed(0)
        assert base.vm_seed(0) != base.with_(name="other").vm_seed(0)

    def test_labels_are_independent(self):
        spec = smoke_spec()
        assert spec.derived_seed("plan") != spec.derived_seed("vm0")


# ----------------------------------------------------------------------
# Schema golden
# ----------------------------------------------------------------------
class TestSchemaGolden:
    def test_golden_schema(self):
        document = json.dumps(ScenarioSpec.schema(), indent=2,
                              sort_keys=True) + "\n"
        if os.environ.get("REPRO_REGEN_GOLDEN") == "1":  # pragma: no cover
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(document, encoding="utf-8")
        assert GOLDEN.exists(), (
            "golden file missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        assert document == GOLDEN.read_text(encoding="utf-8"), (
            "serialized spec shape changed: if intentional, bump "
            "SPEC_VERSION as needed and regenerate with REPRO_REGEN_GOLDEN=1"
        )
