"""Property tests for the batch scan-kernel primitives.

Hypothesis drives randomized frame states and query batches through
the three implementations of every primitive — the scalar reference,
the NumPy batch path, and the pure-``array`` fallback — and pins them
element-for-element.  On top of cross-implementation equality, each
primitive is checked against an independent model:

* **zero sweep** is the order-preserving subsequence of zero frames;
* **duplicate grouping** is a partition (multiset model: the group
  members are exactly ``range(len(pfns))``, each index once) in
  first-encounter order;
* **dirty intersection** is the order-preserving filter, invariant
  under permutation of the dirty set;
* **generation deltas** match a recompute against the public
  ``generation()`` accessor;
* **digest sweeps** match blake2b recomputed from scratch.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.content import ZERO_PAGE, content_digest, tagged_content
from repro.mem.physmem import PhysicalMemory
from repro.mem.scankernel import (
    HAVE_NUMPY,
    BatchScanKernel,
    ScalarScanKernel,
)

NUM_FRAMES = 32

#: Tag space deliberately small so batches are duplicate-heavy; tag 0
#: writes the zero page.
frame_writes = st.lists(
    st.tuples(st.integers(0, NUM_FRAMES - 1), st.integers(0, 5)),
    max_size=64,
)
pfn_batches = st.lists(st.integers(0, NUM_FRAMES - 1), max_size=48)


def build_machine(writes) -> PhysicalMemory:
    physmem = PhysicalMemory(NUM_FRAMES)
    for pfn, tag in writes:
        if tag == 0:
            physmem.write(pfn, ZERO_PAGE)
        else:
            physmem.write(pfn, tagged_content("props", tag))
    return physmem


def kernels(physmem: PhysicalMemory) -> list:
    """Every available implementation over the same machine."""
    implementations = [
        ScalarScanKernel(physmem),
        BatchScanKernel(physmem, use_numpy=False),
    ]
    if HAVE_NUMPY:
        implementations.append(BatchScanKernel(physmem, use_numpy=True))
    return implementations


@settings(max_examples=60, deadline=None)
@given(writes=frame_writes, pfns=pfn_batches)
def test_zero_sweep_is_the_zero_subsequence(writes, pfns):
    physmem = build_machine(writes)
    model = [pfn for pfn in pfns if physmem.peek_content(pfn) == ZERO_PAGE]
    for kernel in kernels(physmem):
        assert kernel.zero_frames(pfns) == model, kernel.backend
        for pfn in pfns:
            assert kernel.is_zero_frame(pfn) == (
                physmem.peek_content(pfn) == ZERO_PAGE
            ), kernel.backend


@settings(max_examples=60, deadline=None)
@given(writes=frame_writes, pfns=pfn_batches)
def test_grouping_is_a_first_encounter_partition(writes, pfns):
    physmem = build_machine(writes)
    # Independent model: first-encounter grouping by content bytes.
    model: dict[bytes, list[int]] = {}
    for index, pfn in enumerate(pfns):
        model.setdefault(physmem.peek_content(pfn), []).append(index)
    expected_groups = list(model.values())
    for kernel in kernels(physmem):
        groups = kernel.group_by_content(pfns)
        # Exact members, exact group order, exact within-group order.
        assert list(groups.values()) == expected_groups, kernel.backend
        # Multiset model: a partition covers every index exactly once.
        flattened = sorted(
            index for members in groups.values() for index in members
        )
        assert flattened == list(range(len(pfns))), kernel.backend
        # Keys really are content identities.
        for key, members in groups.items():
            contents = {physmem.peek_content(pfns[i]) for i in members}
            assert len(contents) == 1, kernel.backend


@settings(max_examples=60, deadline=None)
@given(
    writes=frame_writes,
    pfns=pfn_batches,
    dirty=st.sets(st.integers(0, NUM_FRAMES - 1), max_size=16),
)
def test_dirty_intersection_is_an_order_preserving_filter(writes, pfns, dirty):
    physmem = build_machine(writes)
    model = [pfn for pfn in pfns if pfn in dirty]
    for kernel in kernels(physmem):
        assert kernel.dirty_intersection(pfns, dirty) == model, kernel.backend
        # Permutation invariance over the dirty set's iteration order.
        assert (
            kernel.dirty_intersection(pfns, sorted(dirty, reverse=True))
            == model
        ), kernel.backend


@settings(max_examples=60, deadline=None)
@given(
    writes=frame_writes,
    pfns=pfn_batches,
    offsets=st.lists(st.integers(-2, 2), max_size=48),
)
def test_generation_deltas_match_the_public_accessor(writes, pfns, offsets):
    physmem = build_machine(writes)
    offsets = (offsets + [0] * len(pfns))[: len(pfns)]
    snapshot = [
        physmem.generation(pfn) + offset
        for pfn, offset in zip(pfns, offsets)
    ]
    model = [
        pfn
        for pfn, recorded in zip(pfns, snapshot)
        if physmem.generation(pfn) != recorded
    ]
    for kernel in kernels(physmem):
        assert kernel.generation_snapshot(pfns) == [
            physmem.generation(pfn) for pfn in pfns
        ], kernel.backend
        assert kernel.changed_since(pfns, snapshot) == model, kernel.backend
        with pytest.raises(ValueError):
            kernel.changed_since(pfns, snapshot + [0])


@settings(max_examples=60, deadline=None)
@given(writes=frame_writes, pfns=pfn_batches)
def test_digest_sweep_matches_blake2b_recompute(writes, pfns):
    physmem = build_machine(writes)
    model = [content_digest(physmem.peek_content(pfn)) for pfn in pfns]
    for kernel in kernels(physmem):
        swept = kernel.digest_sweep(pfns)
        assert swept == model, kernel.backend
        # Python ints, never NumPy scalars: digests are unsigned
        # 64-bit values and downstream sums must not wrap.
        assert all(type(value) is int for value in swept), kernel.backend


@settings(max_examples=60, deadline=None)
@given(
    writes=frame_writes,
    pfns=pfn_batches,
    refs=st.lists(st.integers(0, NUM_FRAMES - 1), max_size=48),
    pins=st.sets(st.integers(0, NUM_FRAMES - 1), max_size=8),
)
def test_refcount_and_fused_reductions(writes, pfns, refs, pins):
    physmem = build_machine(writes)
    for pfn in refs:
        physmem.get_ref(pfn)
    for pfn in pins:
        physmem.pin_fused(pfn)
    expected_sum = sum(physmem.refcount(pfn) for pfn in pfns)
    expected_any = any(physmem.is_fused(pfn) for pfn in pfns)
    for kernel in kernels(physmem):
        assert kernel.refcount_sum(pfns) == expected_sum, kernel.backend
        assert type(kernel.refcount_sum(pfns)) is int, kernel.backend
        assert kernel.any_fused(pfns) == expected_any, kernel.backend


@settings(max_examples=30, deadline=None)
@given(writes=frame_writes, pfns=pfn_batches)
def test_out_of_range_pfns_raise_on_every_implementation(writes, pfns):
    from repro.errors import InvalidFrameError

    physmem = build_machine(writes)
    for bad in (NUM_FRAMES, -1):
        batch = pfns + [bad]
        for kernel in kernels(physmem):
            for probe in (
                kernel.zero_frames,
                kernel.group_by_content,
                kernel.digest_sweep,
                kernel.generation_snapshot,
                kernel.refcount_sum,
            ):
                with pytest.raises(InvalidFrameError):
                    probe(batch)


def test_empty_batches_are_empty_everywhere():
    physmem = PhysicalMemory(NUM_FRAMES)
    for kernel in kernels(physmem):
        assert kernel.zero_frames([]) == []
        assert kernel.group_by_content([]) == {}
        assert kernel.dirty_intersection([], set()) == []
        assert kernel.changed_since([], []) == []
        assert kernel.digest_sweep([]) == []
        assert kernel.generation_snapshot([]) == []
        assert kernel.refcount_sum([]) == 0
        assert kernel.any_fused([]) is False
        assert kernel.any_fused(frozenset()) is False


@pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
def test_numpy_views_are_zero_copy_and_live():
    """The frombuffer views track column mutations with no re-copy."""
    physmem = PhysicalMemory(NUM_FRAMES)
    kernel = BatchScanKernel(physmem, use_numpy=True)
    assert kernel.backend == "numpy"
    assert kernel.zero_frames(list(range(NUM_FRAMES))) == list(
        range(NUM_FRAMES)
    )
    physmem.write(7, tagged_content("live", 1))
    assert 7 not in kernel.zero_frames(list(range(NUM_FRAMES)))
    physmem.write(7, ZERO_PAGE)
    assert 7 in kernel.zero_frames(list(range(NUM_FRAMES)))
