"""Smoke tests running every example script in-process.

The examples are part of the public surface; they must run clean and
print the claims they advertise.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "frames saved: 8" in out
        assert "copy-on-access" in out
        assert "bob still sees the original shared content" in out

    def test_dedup_side_channel(self, capsys):
        out = run_example("dedup_side_channel.py", capsys)
        assert "SECRET LEAKED" in out
        assert "attack defeated" in out

    def test_flip_feng_shui_demo(self, capsys):
        out = run_example("flip_feng_shui_demo.py", capsys)
        assert out.count("ATTACK SUCCEEDED") == 2  # vs KSM and vs WPF
        assert out.count("attack defeated") == 2  # both vs VUsion

    def test_covert_channel(self, capsys):
        out = run_example("covert_channel.py", capsys)
        assert "CHANNEL WORKS" in out
        assert "channel destroyed" in out

    def test_thp_tradeoff(self, capsys):
        out = run_example("thp_tradeoff.py", capsys)
        assert "n=1" in out
        assert "adaptive" in out

    @pytest.mark.slow
    def test_cloud_consolidation(self, capsys):
        out = run_example("cloud_consolidation.py", capsys)
        assert "No Dedup" in out
        assert "VUsion THP" in out
