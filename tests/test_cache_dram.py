"""Tests for the LLC model, DRAM geometry and the Rowhammer engine."""

from __future__ import annotations

import pytest

from repro.cache.llc import LastLevelCache
from repro.dram.geometry import DramMapper
from repro.dram.rowhammer import RowhammerEngine
from repro.mem.physmem import PhysicalMemory
from repro.params import CacheGeometry, DramGeometry, PAGE_SIZE


@pytest.fixture
def llc() -> LastLevelCache:
    return LastLevelCache(CacheGeometry())


class TestCacheGeometry:
    def test_paper_geometry(self):
        geometry = CacheGeometry()
        assert geometry.num_sets == 8192
        assert geometry.num_colors == 128

    def test_page_color_is_pfn_mod_colors(self, llc):
        assert llc.color_of_frame(0) == 0
        assert llc.color_of_frame(127) == 127
        assert llc.color_of_frame(128) == 0
        assert llc.color_of_frame(1000) == 1000 % 128

    def test_same_color_same_sets(self, llc):
        """Two same-colored frames cover exactly the same cache sets."""
        assert list(llc.sets_of_frame(3)) == list(llc.sets_of_frame(3 + 128))
        assert list(llc.sets_of_frame(3)) != list(llc.sets_of_frame(4))


class TestCacheBehaviour:
    def test_miss_then_hit(self, llc):
        assert not llc.access(0x1000)
        assert llc.access(0x1000)

    def test_flush_line(self, llc):
        llc.access(0x1000)
        llc.flush_line(0x1000)
        assert not llc.access(0x1000)

    def test_flush_frame(self, llc):
        for offset in range(0, PAGE_SIZE, 64):
            llc.access(5 * PAGE_SIZE + offset)
        llc.flush_frame(5)
        assert not llc.contains_line(5 * PAGE_SIZE)
        assert not llc.contains_line(5 * PAGE_SIZE + 4032)

    def test_eviction_at_associativity(self, llc):
        """Way+1 same-set lines evict the LRU line (PRIME+PROBE's basis)."""
        base = 0x4000
        stride = llc.geometry.num_sets * 64  # same set, different tag
        for way in range(llc.geometry.ways):
            llc.access(base + way * stride)
        assert llc.access(base + 0 * stride)  # still cached (LRU refreshed)
        llc.access(base + llc.geometry.ways * stride)  # overflows the set
        # base line was LRU after its refresh... fill order means line 1 went.
        assert not llc.contains_line(base + 1 * stride)

    def test_probe_does_not_allocate(self, llc):
        assert not llc.probe(0x2000)
        assert not llc.contains_line(0x2000)

    def test_different_sets_do_not_conflict(self, llc):
        llc.access(0)
        llc.access(64)
        assert llc.contains_line(0)
        assert llc.contains_line(64)


class TestDramGeometry:
    def test_bank_row_mapping(self):
        dram = DramMapper(DramGeometry(banks=8, pages_per_row=2), 4096)
        bank, row = dram.bank_and_row(0)
        assert (bank, row) == (0, 0)
        # Next row of the same bank starts 16 frames later.
        assert dram.bank_and_row(16) == (0, 1)
        assert dram.bank_and_row(2) == (1, 0)

    def test_frames_of_row(self):
        dram = DramMapper(DramGeometry(), 4096)
        assert dram.frames_of_row(0, 1) == [16, 17]

    def test_double_sided_detection(self):
        dram = DramMapper(DramGeometry(), 4096)
        # Frames 0 (bank0,row0) and 32 (bank0,row2) sandwich row 1.
        assert dram.double_sided_victim(0, 32) == (0, 1)
        assert dram.double_sided_victim(32, 0) == (0, 1)
        assert dram.double_sided_victim(0, 16) is None  # adjacent, not 2 apart
        assert dram.double_sided_victim(0, 2) is None  # different banks

    def test_aggressors_for(self):
        dram = DramMapper(DramGeometry(), 4096)
        above, below = dram.aggressors_for(16)  # bank 0, row 1
        assert above == [0, 1]
        assert below == [32, 33]


class TestRowhammer:
    def _engine(self, vulnerability=1.0):
        mem = PhysicalMemory(4096)
        dram = DramMapper(DramGeometry(), 4096)
        return mem, RowhammerEngine(mem, dram, seed=7, row_vulnerability=vulnerability)

    def test_double_sided_flips_victim_row(self):
        mem, engine = self._engine()
        mem.write(16, b"\xff" * 32)
        flips = engine.hammer(0, 32)
        assert flips, "fully-vulnerable chip must flip"
        for flip in flips:
            assert flip.pfn in (16, 17)

    def test_unrelated_rows_no_flips(self):
        _mem, engine = self._engine()
        assert engine.hammer(0, 2) == []  # different banks

    def test_templates_deterministic(self):
        _mem, engine = self._engine()
        assert engine.templates_of_row(0, 5) == engine.templates_of_row(0, 5)

    def test_flip_not_reapplied_until_rewrite(self):
        mem, engine = self._engine()
        first = engine.hammer(0, 32)
        assert first
        content_after = mem.read(first[0].pfn)
        # Hammering again must not toggle the flip back.
        assert engine.hammer(0, 32) == []
        assert mem.read(first[0].pfn) == content_after
        # Rewriting the frame recharges the cell; it can flip again.
        mem.write(first[0].pfn, b"fresh")
        again = engine.hammer(0, 32)
        assert any(f.pfn == first[0].pfn for f in again)

    def test_flip_visible_in_content(self):
        mem, engine = self._engine()
        mem.write(16, b"\x00" * 8)
        mem.write(17, b"\x00" * 8)
        before = (mem.read(16), mem.read(17))
        flips = engine.hammer(0, 32)
        changed = (mem.read(16), mem.read(17)) != before
        assert changed == bool(flips)

    def test_vulnerability_zero_never_flips(self):
        _mem, engine = self._engine(vulnerability=0.0)
        for row in range(0, 64, 2):
            assert engine.hammer(row * 16, row * 16 + 32) == []
