"""Tests for the adaptive THP threshold policy (the §8.1 extension)."""

from __future__ import annotations

from repro.kernel.adaptive_thp import AdaptiveThpConfig, AdaptiveThpPolicy
from repro.kernel.kernel import Kernel
from repro.kernel.khugepaged import Khugepaged
from repro.params import PAGE_SIZE, SECOND

from tests.conftest import small_spec


def make_policy(frames=16384, **config_overrides):
    kernel = Kernel(small_spec(frames=frames))
    khugepaged = Khugepaged(kernel, period=100 * SECOND, secure=True,
                            active_threshold=64)
    config = AdaptiveThpConfig(period=SECOND, **config_overrides)
    policy = AdaptiveThpPolicy(kernel, khugepaged, config)
    return kernel, khugepaged, policy


class TestSignals:
    def test_miss_rate_zero_without_traffic(self):
        _kernel, _kh, policy = make_policy()
        assert policy.tlb_miss_rate() == 0.0

    def test_miss_rate_counts_deltas(self):
        kernel, _kh, policy = make_policy()
        proc = kernel.create_process("p")
        vma = proc.mmap(256)
        for index in range(256):
            proc.write(vma.start + index * PAGE_SIZE, bytes([1 + index % 200]))
        proc.tlb.flush()
        for index in range(256):
            proc.read(vma.start + index * PAGE_SIZE)
        first = policy.tlb_miss_rate()
        assert first > 0
        # No traffic since: the next window reads zero.
        assert policy.tlb_miss_rate() == 0.0

    def test_free_fraction(self):
        kernel, _kh, policy = make_policy()
        assert 0.9 < policy.free_fraction() <= 1.0


class TestControlLoop:
    def test_translation_starved_lowers_threshold(self):
        kernel, khugepaged, policy = make_policy()
        proc = kernel.create_process("p")
        # A working set far beyond TLB reach: constant misses.
        vma = proc.mmap(512)
        for index in range(512):
            proc.write(vma.start + index * PAGE_SIZE, bytes([1 + index % 200]))
        before = khugepaged.active_threshold
        kernel.idle(SECOND)
        for round_index in range(6):
            for index in range(0, 512, 3):
                proc.read(vma.start + ((index * 97) % 512) * PAGE_SIZE)
            kernel.idle(SECOND)
        assert khugepaged.active_threshold < before
        assert policy.adjustments

    def test_memory_pressure_raises_threshold(self):
        kernel, khugepaged, policy = make_policy(frames=4096)
        proc = kernel.create_process("p")
        # Consume >75% of memory with one warm page re-read (no misses).
        vma = proc.mmap(3300)
        for index in range(3300):
            proc.write(vma.start + index * PAGE_SIZE, bytes([1 + index % 200]))
        kernel.idle(SECOND)  # absorb the boot-write miss burst
        before = khugepaged.active_threshold
        for _ in range(4):
            for _ in range(50):
                proc.read(vma.start)  # pure TLB hits
            kernel.idle(SECOND)
        assert khugepaged.active_threshold > before

    def test_threshold_clamped(self):
        kernel, khugepaged, policy = make_policy(
            min_threshold=1, max_threshold=8, step=100
        )
        khugepaged.active_threshold = 4
        proc = kernel.create_process("p")
        vma = proc.mmap(512)
        for index in range(512):
            proc.write(vma.start + index * PAGE_SIZE, bytes([1 + index % 200]))
        for _ in range(3):
            for index in range(512):
                proc.read(vma.start + ((index * 131) % 512) * PAGE_SIZE)
            kernel.idle(SECOND)
        assert khugepaged.active_threshold >= 1

    def test_stable_in_comfort_zone(self):
        """Low miss rate and plenty of memory: no adjustments."""
        kernel, khugepaged, policy = make_policy()
        proc = kernel.create_process("p")
        vma = proc.mmap(4)
        proc.write(vma.start, b"x")
        kernel.idle(SECOND)
        before = khugepaged.active_threshold
        for _ in range(5):
            for _ in range(100):
                proc.read(vma.start)
            kernel.idle(SECOND)
        assert khugepaged.active_threshold == before
        assert policy.adjustments == []
