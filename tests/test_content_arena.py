"""Unit and property tests for the hash-consed content arena.

The arena is the foundation the columnar frame store stands on, so its
contract is pinned down directly: interning deduplicates, references
count exactly, slots recycle the moment the last holder releases, the
zero page is permanently live, and digests are computed at most once
per live unique payload.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.mem.arena import ContentArena, ZERO_ID
from repro.mem.content import ZERO_PAGE, content_digest, tagged_content


def payload(tag: int) -> bytes:
    return tagged_content("arena", tag)


class TestInterning:
    def test_equal_payloads_share_one_id(self):
        arena = ContentArena()
        first = arena._intern(payload(1))
        second = arena._intern(payload(1))
        assert first == second
        assert arena.refcount(first) == 2
        assert arena.stats.intern_hits == 1
        assert arena.stats.intern_misses == 1

    def test_distinct_payloads_get_distinct_ids(self):
        arena = ContentArena()
        ids = {arena._intern(payload(tag)) for tag in range(8)}
        assert len(ids) == 8
        assert ZERO_ID not in ids
        assert arena.unique_contents() == 9  # + the zero page

    def test_interning_the_zero_page_reuses_zero_id(self):
        arena = ContentArena()
        assert arena._intern(ZERO_PAGE) == ZERO_ID
        assert arena.refcount(ZERO_ID) == 2  # permanent self-ref + ours

    def test_payload_roundtrip_is_canonical(self):
        arena = ContentArena()
        content = payload(3)
        cid = arena._intern(content)
        assert arena.payload(cid) == content
        # Hash-consing: a later equal intern returns the *same object*,
        # which is what makes frame-content equality an identity check.
        assert arena.payload(arena._intern(payload(3))) is arena.payload(cid)

    def test_lookup_does_not_retain(self):
        arena = ContentArena()
        cid = arena._intern(payload(4))
        assert arena.lookup(payload(4)) == cid
        assert arena.refcount(cid) == 1
        assert arena.lookup(payload(5)) is None


class TestRefcounting:
    def test_release_to_zero_recycles_the_slot(self):
        arena = ContentArena()
        cid = arena._intern(payload(1))
        arena._release(cid)
        assert arena.refcount(cid) == 0
        assert arena.lookup(payload(1)) is None
        with pytest.raises(ValueError, match="not live"):
            arena.payload(cid)

    def test_recycled_slot_is_reused_before_growing(self):
        arena = ContentArena()
        cid = arena._intern(payload(1))
        arena._release(cid)
        assert arena._intern(payload(2)) == cid
        assert arena.payload(cid) == payload(2)
        assert arena.stats.entries_freed == 1

    def test_retain_counts_in_bulk(self):
        arena = ContentArena()
        cid = arena._intern(payload(1))
        arena._retain(cid, 5)
        assert arena.refcount(cid) == 6
        for _ in range(6):
            arena._release(cid)
        assert arena.refcount(cid) == 0

    def test_retain_of_dead_id_raises(self):
        arena = ContentArena()
        cid = arena._intern(payload(1))
        arena._release(cid)
        with pytest.raises(ValueError, match="dead content id"):
            arena._retain(cid)

    def test_release_underflow_raises(self):
        arena = ContentArena()
        cid = arena._intern(payload(1))
        arena._release(cid)
        with pytest.raises(ValueError, match="underflow"):
            arena._release(cid)

    def test_zero_page_is_permanently_live(self):
        arena = ContentArena()
        # A store holding N zero frames retains N times and may release
        # them all; the arena's own reference keeps the entry alive.
        arena._retain(ZERO_ID, 3)
        for _ in range(3):
            arena._release(ZERO_ID)
        assert arena.refcount(ZERO_ID) == 1
        assert arena.payload(ZERO_ID) == ZERO_PAGE
        assert arena.zero_id == ZERO_ID


class TestDigests:
    def test_digest_matches_content_digest(self):
        arena = ContentArena()
        cid = arena._intern(payload(1))
        assert arena.digest(cid) == content_digest(payload(1))

    def test_digest_computed_once_per_unique_payload(self):
        arena = ContentArena()
        cid = arena._intern(payload(1))
        arena._intern(payload(1))
        for _ in range(5):
            arena.digest(cid)
        assert arena.stats.digests_computed == 1

    def test_peek_digest_never_computes(self):
        arena = ContentArena()
        cid = arena._intern(payload(1))
        assert arena.peek_digest(cid) is None
        assert arena.stats.digests_computed == 0
        arena.digest(cid)
        assert arena.peek_digest(cid) == content_digest(payload(1))

    def test_recycling_clears_the_cached_digest(self):
        arena = ContentArena()
        cid = arena._intern(payload(1))
        arena.digest(cid)
        arena._release(cid)
        assert arena._intern(payload(2)) == cid  # slot reused
        assert arena.peek_digest(cid) is None
        assert arena.digest(cid) == content_digest(payload(2))
        assert arena.stats.digests_computed == 2


# ----------------------------------------------------------------------
# Property: the arena tracks a reference-counted multiset exactly
# ----------------------------------------------------------------------

arena_op = st.one_of(
    st.tuples(st.just("intern"), st.integers(0, 5)),
    st.tuples(st.just("release"), st.integers(0, 5)),
    st.tuples(st.just("digest"), st.integers(0, 5)),
)


@given(ops=st.lists(arena_op, min_size=1, max_size=200))
def test_arena_matches_multiset_model(ops):
    """Random intern/release/digest traffic against a dict model."""
    arena = ContentArena()
    model: dict[bytes, int] = {}  # payload -> outstanding references
    for action, tag in ops:
        content = payload(tag)
        if action == "intern":
            cid = arena._intern(content)
            model[content] = model.get(content, 0) + 1
            assert arena.payload(cid) == content
        elif action == "release" and content in model:
            arena._release(arena.lookup(content))
            model[content] -= 1
            if model[content] == 0:
                del model[content]
        elif action == "digest" and content in model:
            assert arena.digest(arena.lookup(content)) == content_digest(content)

        # Live set and per-payload refcounts mirror the model exactly.
        assert arena.unique_contents() == len(model) + 1
        assert len(arena) == len(model) + 1
        for held, refs in model.items():
            assert arena.refcount(arena.lookup(held)) == refs
        assert arena.refcount(ZERO_ID) == 1
        live = set(arena.live_ids())
        assert ZERO_ID in live
        assert len(live) == len(model) + 1

    # Digests are never computed twice for a payload while it stays live
    # — the counter is bounded by distinct (payload, lifetime) pairs.
    assert arena.stats.digests_computed <= (
        arena.stats.intern_misses + 1  # + possible zero-page digest
    )
