"""Tests for the ASCII chart renderer."""

from __future__ import annotations

from repro.analysis.plot import ascii_chart


class TestAsciiChart:
    def test_empty(self):
        assert "(no data)" in ascii_chart({}, title="t")

    def test_title_and_legend(self):
        text = ascii_chart(
            {"ksm": [(0, 1), (1, 2)], "vusion": [(0, 1), (1, 3)]},
            title="Memory",
        )
        assert text.splitlines()[0] == "Memory"
        assert "o=ksm" in text
        assert "*=vusion" in text

    def test_axis_labels(self):
        text = ascii_chart({"a": [(0, 100), (10, 500)]})
        assert "500" in text
        assert "100" in text
        assert "0.0" in text and "10.0" in text

    def test_marker_positions_monotonic_series(self):
        text = ascii_chart({"a": [(0, 0), (5, 5), (10, 10)]}, width=11, height=11)
        rows = [line for line in text.splitlines() if "|" in line]
        # The rising series places its low point in the bottom row and
        # its high point in the top row.
        assert "o" in rows[0]
        assert "o" in rows[-1]

    def test_flat_series_does_not_crash(self):
        text = ascii_chart({"flat": [(0, 7), (5, 7)]})
        assert "o" in text

    def test_single_point(self):
        text = ascii_chart({"p": [(3, 3)]})
        assert "o" in text

    def test_height_and_width_respected(self):
        text = ascii_chart({"a": [(0, 0), (1, 1)]}, width=20, height=5)
        plot_rows = [line for line in text.splitlines() if "|" in line]
        assert len(plot_rows) == 5
        assert all(len(line.split("|", 1)[1]) <= 20 for line in plot_rows)

    def test_many_series_marker_cycle(self):
        series = {f"s{i}": [(0, i)] for i in range(10)}
        text = ascii_chart(series)
        assert "#=s4" in text
