"""Security tests: the Table 1 attack matrix.

Every attack must succeed against the insecure engine it was published
against and fail against VUsion — this is the paper's core security
claim, evaluated end-to-end through architectural behaviour only.
"""

from __future__ import annotations

import pytest

from repro.attacks import (
    AttackEnvironment,
    CowTimingAttack,
    FlipFengShuiAttack,
    PageColorAttack,
    PageSharingAttack,
    ReuseFlipFengShuiAttack,
    TranslationAttack,
)


def env_for(engine, **kwargs):
    return AttackEnvironment(engine, **kwargs)


class TestCowTiming:
    def test_succeeds_against_ksm(self):
        result = CowTimingAttack(env_for("ksm")).run()
        assert result.success
        assert result.evidence["slow_correct"] > result.evidence["slow_wrong"]

    def test_defeated_by_vusion(self):
        result = CowTimingAttack(env_for("vusion")).run()
        assert not result.success
        # SB: correct and wrong guesses are *equally* slow.
        assert result.evidence["slow_correct"] == result.evidence["slow_wrong"]

    def test_nothing_to_detect_without_fusion(self):
        result = CowTimingAttack(env_for("none")).run()
        assert not result.success
        assert result.evidence["slow_correct"] == 0


class TestPageSharing:
    def test_succeeds_against_ksm(self):
        assert PageSharingAttack(env_for("ksm")).run().success

    def test_succeeds_against_wpf(self):
        assert PageSharingAttack(env_for("wpf")).run().success

    def test_defeated_by_vusion(self):
        result = PageSharingAttack(env_for("vusion")).run()
        assert not result.success
        # CD-bit pages can never produce a shared cache hit.
        assert result.evidence["hits_correct"] == 0


class TestPageColor:
    def test_succeeds_against_wpf(self):
        result = PageColorAttack(env_for("wpf")).run()
        assert result.success
        assert result.evidence["moved_correct"]
        assert not result.evidence["moved_wrong"]

    def test_defeated_by_vusion(self):
        result = PageColorAttack(env_for("vusion")).run()
        assert not result.success
        # Both candidates moved: the color change carries no merge info.
        assert result.evidence["moved_correct"]
        assert result.evidence["moved_wrong"]


class TestTranslation:
    def test_succeeds_against_ksm(self):
        result = TranslationAttack(env_for("ksm", thp_fault=True, frames=32768)).run()
        assert result.success
        assert (
            result.evidence["t_true"] - result.evidence["t_false"]
            >= result.evidence["walk_step"] // 2
        )

    def test_defeated_by_vusion(self):
        result = TranslationAttack(
            env_for("vusion", thp_fault=True, frames=32768)
        ).run()
        assert not result.success
        # Both THPs were split (idleness), so timings are equal.
        assert result.evidence["t_true"] == result.evidence["t_false"]

    def test_requires_thp(self):
        result = TranslationAttack(env_for("ksm")).run()
        assert not result.success
        assert "error" in result.evidence


class TestFlipFengShui:
    def test_succeeds_against_ksm(self):
        result = FlipFengShuiAttack(
            env_for("ksm", thp_fault=True, frames=32768, row_vulnerability=0.3)
        ).run()
        assert result.success
        assert result.evidence["merged"]
        assert result.evidence["corrupted"]

    def test_defeated_by_vusion(self):
        result = FlipFengShuiAttack(
            env_for("vusion", thp_fault=True, frames=32768, row_vulnerability=0.3)
        ).run()
        assert not result.success

    def test_no_merge_no_corruption(self):
        result = FlipFengShuiAttack(
            env_for("none", thp_fault=True, frames=32768, row_vulnerability=0.3)
        ).run()
        assert not result.success


class TestReuseFlipFengShui:
    def test_succeeds_against_wpf(self):
        result = ReuseFlipFengShuiAttack(
            env_for("wpf", row_vulnerability=0.3)
        ).run()
        assert result.success
        assert result.evidence["corrupted"]

    def test_defeated_by_vusion(self):
        result = ReuseFlipFengShuiAttack(
            env_for("vusion", row_vulnerability=0.3)
        ).run()
        assert not result.success


class TestEnvironment:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            AttackEnvironment("bogus")

    def test_attacker_registered_before_victim(self):
        env = env_for("none")
        assert env.attacker.pid < env.victim.pid
