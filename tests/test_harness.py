"""Tests for system configurations and the scenario driver."""

from __future__ import annotations

import pytest

from repro.core.vusion import Vusion
from repro.fusion.cow_ksm import CopyOnAccessKsm
from repro.fusion.ksm import Ksm
from repro.fusion.wpf import WindowsPageFusion
from repro.fusion.zeropage import ZeroPageFusion
from repro.harness.scenario import (
    KSM_CONFIG,
    NO_DEDUP,
    STANDARD_CONFIGS,
    Scenario,
    SystemConfig,
    VUSION_CONFIG,
    VUSION_THP_CONFIG,
    build_engine,
)
from repro.params import SECOND
from repro.workloads.vm_image import DISTRO_IMAGES


class TestSystemConfig:
    def test_standard_configs_complete(self):
        labels = [config.label for config in STANDARD_CONFIGS]
        assert labels == ["No Dedup", "KSM", "VUsion", "VUsion THP"]

    def test_with_overrides(self):
        config = KSM_CONFIG.with_(pages_per_scan=7)
        assert config.pages_per_scan == 7
        assert config.label == "KSM"
        assert KSM_CONFIG.pages_per_scan != 7  # original untouched

    def test_thp_config_conserves(self):
        assert VUSION_THP_CONFIG.conserve_thp
        assert not VUSION_CONFIG.conserve_thp

    def test_build_engine_types(self):
        assert build_engine(NO_DEDUP) is None
        assert isinstance(build_engine(KSM_CONFIG), Ksm)
        assert isinstance(build_engine(VUSION_CONFIG), Vusion)
        assert isinstance(
            build_engine(KSM_CONFIG.with_(engine="coa-ksm")), CopyOnAccessKsm
        )
        assert isinstance(
            build_engine(KSM_CONFIG.with_(engine="wpf")), WindowsPageFusion
        )
        assert isinstance(
            build_engine(KSM_CONFIG.with_(engine="zeropage")), ZeroPageFusion
        )

    def test_build_engine_unknown(self):
        with pytest.raises(ValueError):
            build_engine(KSM_CONFIG.with_(engine="bogus"))

    def test_vusion_engine_inherits_knobs(self):
        config = VUSION_THP_CONFIG.with_(pool_frames=77, min_idle_ns=123,
                                         working_set=False)
        engine = build_engine(config)
        assert engine.config.random_pool_frames == 77
        assert engine.config.min_idle_ns == 123
        assert engine.config.thp_enabled
        assert not engine.config.working_set_enabled


class TestScenario:
    def test_boot_and_sample(self):
        scenario = Scenario(KSM_CONFIG, frames=16384)
        vm = scenario.boot(DISTRO_IMAGES["debian"])
        assert vm.total_pages == DISTRO_IMAGES["debian"].total_pages
        sample = scenario.sample()
        assert sample.frames_in_use > vm.total_pages // 2

    def test_run_sampling_interval(self):
        scenario = Scenario(NO_DEDUP, frames=16384)
        scenario.boot(DISTRO_IMAGES["debian"])
        samples = scenario.run_sampling(5 * SECOND, SECOND)
        assert len(samples) == 5
        times = [sample.t_ns for sample in samples]
        assert times == sorted(times)

    def test_khugepaged_wiring(self):
        secure = Scenario(VUSION_THP_CONFIG, frames=16384)
        assert secure.khugepaged is not None and secure.khugepaged.secure
        insecure = Scenario(KSM_CONFIG, frames=16384)
        assert insecure.khugepaged is not None and not insecure.khugepaged.secure
        plain = Scenario(VUSION_CONFIG, frames=16384)
        assert plain.khugepaged is None

    def test_saved_frames_no_engine(self):
        scenario = Scenario(NO_DEDUP, frames=16384)
        assert scenario.saved_frames() == 0

    def test_series_extraction(self):
        scenario = Scenario(NO_DEDUP, frames=16384)
        scenario.boot(DISTRO_IMAGES["debian"])
        scenario.run_sampling(2 * SECOND, SECOND)
        series = scenario.series("frames_in_use")
        assert len(series) == 2
        assert all(isinstance(t, float) and value > 0 for t, value in series)

    def test_fusion_converges_same_image(self):
        scenario = Scenario(KSM_CONFIG, frames=32768)
        for _ in range(2):
            scenario.boot(DISTRO_IMAGES["ubuntu"])
        scenario.idle(8 * SECOND)
        image = DISTRO_IMAGES["ubuntu"]
        # At least the kernel+page-cache duplicates should merge.
        assert scenario.saved_frames() > (
            image.kernel_pages + image.page_cache_pages
        ) // 2
