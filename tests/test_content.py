"""Unit and property tests for canonical page contents."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.mem.content import (
    ZERO_PAGE,
    content_digest,
    flip_bit,
    is_zero,
    make_content,
    random_content,
    tagged_content,
)
from repro.params import PAGE_SIZE


class TestMakeContent:
    def test_strips_trailing_zeros(self):
        assert make_content(b"abc\x00\x00") == b"abc"

    def test_zero_page_is_empty(self):
        assert make_content(b"\x00" * 64) == ZERO_PAGE

    def test_preserves_interior_zeros(self):
        assert make_content(b"a\x00b") == b"a\x00b"

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            make_content(b"x" * (PAGE_SIZE + 1))

    def test_full_page_accepted(self):
        assert make_content(b"\x01" * PAGE_SIZE) == b"\x01" * PAGE_SIZE

    def test_is_zero(self):
        assert is_zero(ZERO_PAGE)
        assert not is_zero(b"x")


class TestFlipBit:
    def test_flip_within_payload(self):
        flipped = flip_bit(b"\x00\xff", 1, 0)
        assert flipped == b"\x00\xfe"

    def test_flip_in_zero_tail_extends(self):
        flipped = flip_bit(b"a", 10, 3)
        assert flipped == b"a" + b"\x00" * 9 + b"\x08"

    def test_flip_twice_restores(self):
        original = b"hello"
        assert flip_bit(flip_bit(original, 2, 5), 2, 5) == original

    def test_flip_last_byte_of_page(self):
        flipped = flip_bit(ZERO_PAGE, PAGE_SIZE - 1, 7)
        assert len(flipped) == PAGE_SIZE
        assert flipped[-1] == 0x80

    def test_rejects_out_of_page(self):
        with pytest.raises(ValueError):
            flip_bit(b"a", PAGE_SIZE, 0)
        with pytest.raises(ValueError):
            flip_bit(b"a", 0, 8)

    def test_flip_changes_equality(self):
        a = tagged_content("x", 1)
        assert flip_bit(a, 0, 0) != a


class TestDigestAndTags:
    def test_digest_deterministic(self):
        assert content_digest(b"abc") == content_digest(b"abc")

    def test_digest_differs(self):
        assert content_digest(b"abc") != content_digest(b"abd")

    def test_tagged_content_reproducible(self):
        assert tagged_content("lib", 3) == tagged_content("lib", 3)

    def test_tagged_content_distinct(self):
        assert tagged_content("lib", 3) != tagged_content("lib", 4)

    def test_random_content_nonzero(self):
        rng = random.Random(7)
        for _ in range(50):
            assert not is_zero(random_content(rng))

    def test_random_content_rejects_bad_length(self):
        rng = random.Random(7)
        with pytest.raises(ValueError):
            random_content(rng, 0)


@given(st.binary(max_size=256))
def test_canonicalisation_idempotent(data):
    once = make_content(data)
    assert make_content(once) == once


@given(st.binary(max_size=256), st.binary(max_size=256))
def test_equal_after_padding(a, b):
    """Contents equal iff their zero-padded 4 KiB pages are equal."""
    page_a = a.ljust(PAGE_SIZE, b"\x00")
    page_b = b.ljust(PAGE_SIZE, b"\x00")
    assert (make_content(a) == make_content(b)) == (page_a == page_b)


@given(
    st.binary(max_size=64),
    st.integers(min_value=0, max_value=PAGE_SIZE - 1),
    st.integers(min_value=0, max_value=7),
)
def test_flip_bit_involution(data, offset, bit):
    content = make_content(data)
    assert flip_bit(flip_bit(content, offset, bit), offset, bit) == content
