"""Unit tests for the simrace tier (ownership & determinism races).

Covers the concurrency-model extraction (spawn sites, communication
edges), the worker-root/reachability computation (task entry points,
resolved spawn targets, ``@worker_entry``), the ownership lattice and
``OWNERSHIP_FACTS`` lookups, and each RACE rule with one true-positive
and one clean fixture — including the false-positive guards the
pristine tree relies on (serial degradation, mutate-before-hand-off,
``sorted(...)`` laundering, ``@owned_by_worker``).
"""

from __future__ import annotations

import ast
import textwrap

from repro.check import (
    OWNERSHIP_FACTS,
    RACE_RULES,
    RaceAnalysis,
    engine_of,
    extract_facts,
    lint_project,
    summarize_function,
)
from repro.check.callgraph import CallGraph, iter_functions_with_qualnames
from repro.check.engine import LintResult
from repro.check.ip_rules import IpAnalysis
from repro.check.race import (
    PARENT_OWNED,
    SHARED_READ_ONLY,
    race003_findings,
)


def _path_for(module: str) -> str:
    return "src/" + module.replace(".", "/") + ".py"


def build_race_analysis(sources: dict[str, str]) -> RaceAnalysis:
    modules = {}
    locals_by_full = {}
    for module, raw in sources.items():
        source = textwrap.dedent(raw)
        tree = ast.parse(source)
        facts = extract_facts(tree, module, _path_for(module))
        modules[module] = facts
        for func, qual in iter_functions_with_qualnames(tree):
            locals_by_full[f"{module}.{qual}"] = summarize_function(
                func, qual, facts
            )
    return RaceAnalysis(IpAnalysis(CallGraph(modules), locals_by_full))


def lint_modules(
    sources: dict[str, str], rules: list[str] | None = None
) -> LintResult:
    return lint_project(
        {
            _path_for(module): textwrap.dedent(raw)
            for module, raw in sources.items()
        },
        rule_ids=rules,
    )


def rule_ids(result: LintResult) -> list[str]:
    return [finding.rule_id for finding in result.findings]


# ----------------------------------------------------------------------
# Registry / engine plumbing
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_four_rules_registered(self):
        assert set(RACE_RULES) == {
            "RACE001", "RACE002", "RACE003", "RACE004",
        }

    def test_race_rules_map_to_race_engine(self):
        assert all(engine_of(rule_id) == "race" for rule_id in RACE_RULES)

    def test_scopes(self):
        assert RACE_RULES["RACE003"].scope == "project"
        for rule_id in ("RACE001", "RACE002", "RACE004"):
            assert RACE_RULES[rule_id].scope == "function"

    def test_applies_skips_check_package_and_foreign_code(self):
        rule = RACE_RULES["RACE001"]
        assert rule.applies("repro.runner.pool")
        assert not rule.applies("repro.check.race")
        assert not rule.applies("tests.test_simrace")


# ----------------------------------------------------------------------
# Concurrency model: spawns, comms, worker roots, reachability
# ----------------------------------------------------------------------
class TestRaceAnalysis:
    SOURCES = {
        "repro.runner.task": """
            def execute_task(spec, seed):
                return resolve(spec)

            def resolve(spec):
                return spec
        """,
        "repro.runner.pool": """
            from repro.runner.task import execute_task

            def _worker_main(conn, spec):
                conn.send(("ok", execute_task(spec, 0)))

            def start(ctx, conn, spec):
                process = ctx.Process(
                    target=_worker_main, args=(conn, spec)
                )
                process.start()
                return process
        """,
        "repro.harness.driver": """
            from repro.annotations import worker_entry

            @worker_entry
            def shard_entry(shard):
                return shard

            def orphan(x):
                return x
        """,
    }

    def analysis(self) -> RaceAnalysis:
        return build_race_analysis(self.SOURCES)

    def test_spawn_sites_extracted(self):
        analysis = self.analysis()
        kinds = {
            (facts.module, spawn.kind, spawn.target)
            for facts, spawn in analysis.spawns
        }
        assert (
            "repro.runner.pool", "process", "_worker_main"
        ) in kinds
        # the in-pool direct call is the serial degradation
        assert ("repro.runner.pool", "serial", "execute_task") in kinds

    def test_comm_edges_extracted(self):
        analysis = self.analysis()
        sends = [
            comm for facts, comm in analysis.comms if comm.kind == "send"
        ]
        assert sends and sends[0].caller == "_worker_main"

    def test_worker_roots(self):
        roots = self.analysis().worker_roots
        assert "repro.runner.task.execute_task" in roots   # entry point
        assert "repro.runner.pool._worker_main" in roots   # spawn target
        assert "repro.harness.driver.shard_entry" in roots  # @worker_entry
        assert "repro.harness.driver.orphan" not in roots

    def test_reachability_closes_over_calls_with_witness(self):
        reachable = self.analysis().worker_reachable
        assert "repro.runner.task.resolve" in reachable
        chain = reachable["repro.runner.task.resolve"]
        assert chain[0] in self.analysis().worker_roots

    def test_ownership_lattice(self):
        analysis = self.analysis()
        assert (
            analysis.ownership_of("repro.attacks", "ALL_ATTACKS")
            == SHARED_READ_ONLY
        )
        assert (
            analysis.ownership_of("repro.runner.pool", "_CACHE")
            == PARENT_OWNED
        )

    def test_ownership_facts_cover_only_known_registries(self):
        for module, names in OWNERSHIP_FACTS.items():
            assert module.startswith("repro.")
            assert names, f"{module} declares no names"


# ----------------------------------------------------------------------
# RACE001 — parent mutates a captured payload after hand-off
# ----------------------------------------------------------------------
class TestRace001:
    def test_submit_then_append(self):
        result = lint_modules({
            "repro.runner.pool": """
                def run(executor, items):
                    future = executor.submit(work, items)
                    items.append(1)
                    return future
            """,
        }, rules=["RACE001"])
        assert rule_ids(result) == ["RACE001"]
        assert "captured into a executor submit payload" in (
            result.findings[0].message
        )

    def test_process_spawn_then_subscript_store(self):
        result = lint_modules({
            "repro.runner.pool": """
                def start(ctx, conn, payload):
                    process = ctx.Process(
                        target=_worker_main, args=(conn, payload)
                    )
                    process.start()
                    payload["late"] = 1
                    return process
            """,
        }, rules=["RACE001"])
        assert rule_ids(result) == ["RACE001"]

    def test_task_spec_construction_then_write(self):
        result = lint_modules({
            "repro.runner.task": """
                def build(params):
                    spec = TaskSpec(params)
                    params["target"] = "late"
                    return spec
            """,
        }, rules=["RACE001"])
        assert rule_ids(result) == ["RACE001"]

    def test_mutation_before_hand_off_is_clean(self):
        result = lint_modules({
            "repro.runner.pool": """
                def run(executor, items):
                    items.append(1)
                    return executor.submit(work, items)
            """,
        }, rules=["RACE001"])
        assert result.findings == []

    def test_serial_degradation_is_exempt(self):
        # execute_task() runs in-process and returns before the parent
        # resumes: mutating the spec afterwards is ordinary sequential
        # code, not a race.
        result = lint_modules({
            "repro.runner.pool": """
                def run_serial(specs, results):
                    for spec in specs:
                        results[spec.task_id] = execute_task(spec, 0)
                        spec.attempts += 1
                    return results
            """,
        }, rules=["RACE001"])
        assert result.findings == []

    def test_rebinding_local_name_is_not_a_mutation(self):
        result = lint_modules({
            "repro.runner.pool": """
                def run(executor, items):
                    future = executor.submit(work, items)
                    items = []
                    return future, items
            """,
        }, rules=["RACE001"])
        assert result.findings == []

    def test_suppression_comment_respected(self):
        result = lint_modules({
            "repro.runner.pool": """
                def run(executor, items):
                    future = executor.submit(work, items)
                    items.append(1)  # simlint: disable=RACE001
                    return future
            """,
        }, rules=["RACE001"])
        assert result.findings == []


# ----------------------------------------------------------------------
# RACE002 — order-sensitive reduction over unordered completion
# ----------------------------------------------------------------------
class TestRace002:
    def test_merge_loop_over_as_completed(self):
        result = lint_modules({
            "repro.runner.pool": """
                def collect(futures):
                    merged = {}
                    for future in as_completed(futures):
                        merged[future.name] = future.result()
                    return merged
            """,
        }, rules=["RACE002"])
        assert rule_ids(result) == ["RACE002"]

    def test_merge_loop_over_set_typed_name(self):
        result = lint_modules({
            "repro.runner.pool": """
                def collect(done):
                    pending = {f for f in done if f.ready}
                    out = []
                    for item in pending:
                        out.append(item.value)
                    return out
            """,
        }, rules=["RACE002"])
        assert rule_ids(result) == ["RACE002"]

    def test_materializing_set_into_list(self):
        result = lint_modules({
            "repro.harness.fleet": """
                def order(names):
                    frozen = list({n for n in names})
                    return frozen
            """,
        }, rules=["RACE002"])
        assert rule_ids(result) == ["RACE002"]

    def test_comprehension_over_unordered_stream(self):
        result = lint_modules({
            "repro.runner.pool": """
                def collect(futures):
                    return [f.result() for f in as_completed(futures)]
            """,
        }, rules=["RACE002"])
        assert rule_ids(result) == ["RACE002"]

    def test_sorted_key_launders_the_order(self):
        result = lint_modules({
            "repro.runner.pool": """
                def collect(futures):
                    merged = {}
                    for future in sorted(
                        as_completed(futures), key=lambda f: f.name
                    ):
                        merged[future.name] = future.result()
                    return merged
            """,
        }, rules=["RACE002"])
        assert result.findings == []

    def test_set_typed_result_is_exempt(self):
        # A SetComp *result* is order-free by construction: equality
        # does not depend on iteration order.
        result = lint_modules({
            "repro.runner.pool": """
                def names(futures):
                    return {f.name for f in as_completed(futures)}
            """,
        }, rules=["RACE002"])
        assert result.findings == []

    def test_submission_indexed_collection_is_clean(self):
        result = lint_modules({
            "repro.runner.pool": """
                def collect(futures):
                    results = [None] * len(futures)
                    for index, future in enumerate(futures):
                        results[index] = future.result()
                    return results
            """,
        }, rules=["RACE002"])
        assert result.findings == []


# ----------------------------------------------------------------------
# RACE003 — undeclared worker reads of fork-inherited module state
# ----------------------------------------------------------------------
class TestRace003:
    def test_undeclared_read_from_entry_point(self):
        result = lint_modules({
            "repro.runner.task": """
                _SPEC_CACHE = {}

                def execute_task(spec, seed):
                    return _SPEC_CACHE.get(spec)
            """,
        }, rules=["RACE003"])
        assert rule_ids(result) == ["RACE003"]
        message = result.findings[0].message
        assert "repro.runner.task._SPEC_CACHE" in message
        assert "OWNERSHIP_FACTS" in message
        assert "[" in message  # witness chain

    def test_cross_module_read_names_the_owner(self):
        result = lint_modules({
            "repro.harness.registry": """
                TABLES = {}
            """,
            "repro.runner.task": """
                from repro.harness.registry import TABLES

                def execute_task(spec, seed):
                    return TABLES[spec.name]
            """,
        }, rules=["RACE003"])
        assert rule_ids(result) == ["RACE003"]
        assert "repro.harness.registry.TABLES" in (
            result.findings[0].message
        )

    def test_declared_registry_is_shared_read_only(self, monkeypatch):
        monkeypatch.setitem(
            OWNERSHIP_FACTS, "repro.runner.task", ("_SPEC_CACHE",)
        )
        result = lint_modules({
            "repro.runner.task": """
                _SPEC_CACHE = {}

                def execute_task(spec, seed):
                    return _SPEC_CACHE.get(spec)
            """,
        }, rules=["RACE003"])
        assert result.findings == []

    def test_parent_only_reads_are_not_flagged(self):
        # collect() is not worker-reachable: no spawn targets it, it is
        # not an entry point and carries no @worker_entry.
        result = lint_modules({
            "repro.harness.fleet": """
                _PLANS = {}

                def collect(name):
                    return _PLANS.get(name)
            """,
        }, rules=["RACE003"])
        assert result.findings == []

    def test_owned_by_worker_annotation_skips_the_function(self):
        result = lint_modules({
            "repro.runner.task": """
                from repro.annotations import owned_by_worker

                _LOCAL_SCRATCH = {}

                @owned_by_worker
                def execute_task(spec, seed):
                    return _LOCAL_SCRATCH.get(spec)
            """,
        }, rules=["RACE003"])
        assert result.findings == []

    def test_project_checker_direct(self):
        analysis = build_race_analysis({
            "repro.runner.task": """
                _SPEC_CACHE = {}

                def execute_task(spec, seed):
                    return _SPEC_CACHE.get(spec)
            """,
        })
        findings = race003_findings(analysis)
        assert [f.rule_id for f in findings] == ["RACE003"]
        assert findings[0].module == "repro.runner.task"


# ----------------------------------------------------------------------
# RACE004 — nondeterministic/unpicklable payloads on comm edges
# ----------------------------------------------------------------------
class TestRace004:
    def test_lambda_in_submit_payload(self):
        result = lint_modules({
            "repro.runner.pool": """
                def run(executor, spec):
                    return executor.submit(work, lambda: spec)
            """,
        }, rules=["RACE004"])
        assert rule_ids(result) == ["RACE004"]
        assert "lambda" in result.findings[0].message

    def test_set_literal_through_pipe_send(self):
        result = lint_modules({
            "repro.runner.pool": """
                def _worker_main(conn, spec):
                    conn.send(("ok", {spec.a, spec.b}))
            """,
        }, rules=["RACE004"])
        assert rule_ids(result) == ["RACE004"]
        assert "set-ordered" in result.findings[0].message

    def test_open_handle_into_spawn_args(self):
        result = lint_modules({
            "repro.runner.pool": """
                def start(ctx, path):
                    handle = open(path)
                    return ctx.Process(
                        target=_worker_main, args=(handle,)
                    )
            """,
        }, rules=["RACE004"])
        assert rule_ids(result) == ["RACE004"]
        assert "open file handle" in result.findings[0].message

    def test_id_address_in_task_spec(self):
        result = lint_modules({
            "repro.runner.task": """
                def build(params):
                    return TaskSpec(task_id=id(params), params=params)
            """,
        }, rules=["RACE004"])
        assert rule_ids(result) == ["RACE004"]
        assert "id()" in result.findings[0].message

    def test_unordered_summary_crosses_spec_edge_with_witness(self):
        # freeze() returns set-ordered data; the hazard is detected at
        # the TaskSpec construction site through the callee summary.
        result = lint_modules({
            "repro.runner.task": """
                def freeze(items):
                    return set(items)

                def build(items):
                    return TaskSpec(params=freeze(items))
            """,
        }, rules=["RACE004"])
        assert rule_ids(result) == ["RACE004"]
        assert "freeze" in result.findings[0].message  # witness chain

    def test_sorted_wrapper_launders_set_order(self):
        result = lint_modules({
            "repro.runner.task": """
                def build(items):
                    return TaskSpec(params=sorted({i for i in items}))
            """,
        }, rules=["RACE004"])
        assert result.findings == []

    def test_plain_payload_is_clean(self):
        result = lint_modules({
            "repro.runner.pool": """
                def _worker_main(conn, spec, seed):
                    payload = execute_task(spec, seed)
                    conn.send(("ok", payload, None))
            """,
        }, rules=["RACE004"])
        assert result.findings == []

    def test_serial_call_payload_is_exempt(self):
        # Nothing is pickled on the serial path.
        result = lint_modules({
            "repro.runner.pool": """
                def run_serial(spec):
                    return execute_task(spec, id(spec))
            """,
        }, rules=["RACE004"])
        assert result.findings == []


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestEngineIntegration:
    MIXED = {
        "repro.runner.pool": """
            def run(executor, items):
                future = executor.submit(work, items)
                items.append(1)
                merged = {}
                for done in as_completed([future]):
                    merged[done.name] = done.result()
                return merged
        """,
    }

    def test_full_run_reports_both_function_rules(self):
        result = lint_modules(self.MIXED)
        assert {"RACE001", "RACE002"} <= set(rule_ids(result))

    def test_rule_selection_isolates_one_rule(self):
        result = lint_modules(self.MIXED, rules=["RACE002"])
        assert set(rule_ids(result)) == {"RACE002"}

    def test_findings_are_globally_ordered(self):
        result = lint_modules(self.MIXED)
        keys = [
            (f.path, f.line, f.rule_id, f.qualname) for f in result.findings
        ]
        assert keys == sorted(keys)

    def test_race_findings_carry_race_engine_tag(self):
        result = lint_modules(self.MIXED, rules=["RACE001"])
        assert all(f.engine == "race" for f in result.findings)
