"""Unit tests for the interprocedural simflow tier.

Covers the call-graph resolver (direct / hierarchy / union / builtin
filtering / reachability witnesses), the bottom-up function summaries
(escape inference with the narrow ownership-sink kill set, transitive
taint, mutated-global footprints, SCC fixpoints), the FLOW006
annotation-vs-inference check in *both* directions, the annotation
audit statuses, baseline v1 -> v2 migration (including file-rename
survival via the qualname key), and the on-disk summary cache
(content-hash hits, content invalidation, and dependency-digest
invalidation of callers when a callee's contract changes).
"""

from __future__ import annotations

import ast
import json
import pathlib
import textwrap

from repro.check import (
    Baseline,
    CallGraph,
    SummaryCache,
    apply_baseline,
    extract_facts,
    lint_project,
    load_baseline,
    summarize_function,
    summarize_project,
    write_baseline,
)
from repro.check.callgraph import iter_functions_with_qualnames
from repro.check.engine import LintResult
from repro.check.ip_rules import IpAnalysis, annotation_report


def _path_for(module: str) -> str:
    return "src/" + module.replace(".", "/") + ".py"


def build_analysis(sources: dict[str, str]) -> IpAnalysis:
    """Parse in-memory modules into an :class:`IpAnalysis`."""
    modules = {}
    locals_by_full = {}
    for module, raw in sources.items():
        source = textwrap.dedent(raw)
        tree = ast.parse(source)
        facts = extract_facts(tree, module, _path_for(module))
        modules[module] = facts
        for func, qual in iter_functions_with_qualnames(tree):
            locals_by_full[f"{module}.{qual}"] = summarize_function(
                func, qual, facts
            )
    return IpAnalysis(CallGraph(modules), locals_by_full)


def lint_modules(
    sources: dict[str, str], rules: list[str] | None = None
) -> LintResult:
    return lint_project(
        {
            _path_for(module): textwrap.dedent(raw)
            for module, raw in sources.items()
        },
        rule_ids=rules,
    )


def callee_set(analysis: IpAnalysis, caller: str, precise: bool) -> set[str]:
    return {
        edge.callee
        for edge in analysis.graph.callees(caller, precise_only=precise)
    }


# ----------------------------------------------------------------------
# Call-graph resolution
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_direct_call_same_module(self):
        analysis = build_analysis({
            "repro.mem.m": """
                def helper(x):
                    return x

                def top(x):
                    return helper(x)
            """,
        })
        assert callee_set(analysis, "repro.mem.m", True) == set()
        assert "repro.mem.m.helper" in callee_set(
            analysis, "repro.mem.m.top", True
        )

    def test_direct_call_across_import(self):
        analysis = build_analysis({
            "repro.mem.lib": """
                def compute(x):
                    return x + 1
            """,
            "repro.mem.app": """
                from repro.mem.lib import compute

                def use(x):
                    return compute(x)
            """,
        })
        assert "repro.mem.lib.compute" in callee_set(
            analysis, "repro.mem.app.use", True
        )

    def test_method_resolves_through_hierarchy(self):
        analysis = build_analysis({
            "repro.mem.engines": """
                class Base:
                    def run(self):
                        return self.handle()

                    def handle(self):
                        return 0

                class Sub(Base):
                    def handle(self):
                        return 1

                    def trigger(self):
                        return self.run()
            """,
        })
        # Ancestor lookup: Sub.trigger -> (inherited) Base.run.
        assert "repro.mem.engines.Base.run" in callee_set(
            analysis, "repro.mem.engines.Sub.trigger", True
        )
        # Dynamic dispatch: Base.run's self.handle() reaches both the
        # base definition and the override.
        run_callees = callee_set(analysis, "repro.mem.engines.Base.run", True)
        assert "repro.mem.engines.Base.handle" in run_callees
        assert "repro.mem.engines.Sub.handle" in run_callees

    def test_unknown_receiver_is_imprecise_union(self):
        analysis = build_analysis({
            "repro.mem.m": """
                def process(x):
                    return x

                def go(worker, x):
                    return worker.process(x)
            """,
        })
        edges = analysis.graph.callees("repro.mem.m.go")
        by_callee = {edge.callee: edge for edge in edges}
        edge = by_callee["repro.mem.m.process"]
        assert edge.kind == "union"
        assert not edge.precise
        assert "repro.mem.m.process" not in callee_set(
            analysis, "repro.mem.m.go", True
        )

    def test_builtins_produce_no_edges(self):
        analysis = build_analysis({
            "repro.mem.m": """
                def count(items):
                    return len(sorted(items))
            """,
        })
        assert analysis.graph.callees("repro.mem.m.count") == []

    def test_reachability_returns_witness_chain(self):
        analysis = build_analysis({
            "repro.runner.task": """
                def execute_task(spec, seed):
                    return _worker(spec, seed)

                def _worker(spec, seed):
                    return _leaf(seed)

                def _leaf(seed):
                    return seed

                def _unreachable():
                    return None
            """,
        })
        chains = analysis.graph.reachable_from()
        assert chains["repro.runner.task._leaf"] == (
            "repro.runner.task.execute_task",
            "repro.runner.task._worker",
            "repro.runner.task._leaf",
        )
        assert "repro.runner.task._unreachable" not in chains


# ----------------------------------------------------------------------
# Function summaries
# ----------------------------------------------------------------------
class TestSummaries:
    def summaries(self, sources: dict[str, str]):
        analysis = build_analysis(sources)
        return summarize_project(analysis.graph, analysis.local_summaries)

    def test_returned_fresh_frame_infers_escape(self):
        summaries = self.summaries({
            "repro.mem.m": """
                def fresh(kernel):
                    pfn = kernel.buddy.alloc(0)
                    return pfn
            """,
        })
        summary = summaries["repro.mem.m.fresh"]
        assert summary.inferred_escapes
        assert summary.escapes
        assert not summary.provably_no_escape

    def test_bookkeeping_write_does_not_kill_freshness(self):
        # write()/set_frame_type() touch the frame but do not take
        # ownership: the handle still escapes through the return.
        summaries = self.summaries({
            "repro.mem.m": """
                def fresh(kernel, content):
                    pfn = kernel.buddy.alloc(0)
                    kernel.physmem.write(pfn, content)
                    kernel.physmem.set_frame_type(pfn, "private")
                    return pfn
            """,
        })
        assert summaries["repro.mem.m.fresh"].inferred_escapes

    def test_ownership_sink_kills_freshness(self):
        summaries = self.summaries({
            "repro.mem.m": """
                def mapped(kernel, process, vaddr):
                    pfn = kernel.buddy.alloc(0)
                    kernel.map_page(process, vaddr, pfn, 0)
                    return pfn
            """,
        })
        assert not summaries["repro.mem.m.mapped"].inferred_escapes

    def test_escape_propagates_through_wrapper(self):
        summaries = self.summaries({
            "repro.mem.m": """
                def fresh(kernel):
                    pfn = kernel.buddy.alloc(0)
                    return pfn

                def wrapper(kernel):
                    return fresh(kernel)
            """,
        })
        wrapper = summaries["repro.mem.m.wrapper"]
        assert wrapper.escapes
        assert "repro.mem.m.fresh" in wrapper.escape_chain

    def test_taint_propagates_through_wrapper(self):
        summaries = self.summaries({
            "repro.runner.m": """
                import time

                def stamp():
                    return time.time()

                def wrapper():
                    return stamp()
            """,
        })
        assert summaries["repro.runner.m.stamp"].returns_taint
        assert summaries["repro.runner.m.wrapper"].returns_taint

    def test_global_write_footprint(self):
        summaries = self.summaries({
            "repro.runner.m": """
                REGISTRY = {}

                def record(name, value):
                    REGISTRY[name] = value
            """,
        })
        writes = summaries["repro.runner.m.record"].global_writes
        assert any(w.name == "REGISTRY" for w in writes)

    def test_recursive_scc_reaches_fixpoint(self):
        summaries = self.summaries({
            "repro.mem.m": """
                def even(kernel, n):
                    if n == 0:
                        pfn = kernel.buddy.alloc(0)
                        return pfn
                    return odd(kernel, n - 1)

                def odd(kernel, n):
                    return even(kernel, n - 1)
            """,
        })
        assert summaries["repro.mem.m.even"].escapes
        assert summaries["repro.mem.m.odd"].escapes


# ----------------------------------------------------------------------
# FLOW006: annotations are checked claims (both directions)
# ----------------------------------------------------------------------
FLOW006_CONTRADICTED = {
    "repro.fusion.fake": """
        from repro.annotations import escapes_frame

        @escapes_frame
        def claims_escape(kernel):
            count = 0
            count += 1
    """,
}

FLOW006_TRUSTED = {
    "repro.fusion.fake": """
        from repro.annotations import escapes_frame

        @escapes_frame
        def hands_out(pool):
            for pfn in pool.iter_free_frames_asc():
                pool.alloc_specific(pfn)
                return pfn
            raise RuntimeError("empty")
    """,
}


class TestFlow006:
    def test_contradicted_annotation_is_hard_error(self):
        result = lint_modules(FLOW006_CONTRADICTED, rules=["FLOW006"])
        assert [f.rule_id for f in result.findings] == ["FLOW006"]
        (finding,) = result.findings
        assert finding.severity == "error"
        assert "claims_escape" in finding.message

    def test_agreeing_annotation_is_clean(self):
        result = lint_modules(FLOW006_TRUSTED, rules=["FLOW006"])
        assert result.findings == []


class TestAnnotationAudit:
    def test_statuses(self):
        analysis = build_analysis({
            "repro.fusion.fake": """
                from repro.annotations import escapes_frame

                @escapes_frame
                def contradicted(kernel):
                    count = 0
                    count += 1

                @escapes_frame
                def proved(kernel):
                    pfn = kernel.buddy.alloc(0)
                    return pfn

                @escapes_frame
                def trusted(pool):
                    pfn = pool.free_list.pop()
                    return pfn
            """,
        })
        rows = {
            row["qualname"]: row["status"] for row in annotation_report(analysis)
        }
        assert rows == {
            "repro.fusion.fake.contradicted": "contradicted",
            "repro.fusion.fake.proved": "proved",
            "repro.fusion.fake.trusted": "trusted",
        }


# ----------------------------------------------------------------------
# Cross-function rule behavior (beyond the real-tree mutants)
# ----------------------------------------------------------------------
class TestCrossFunctionRules:
    def test_flow003ip_flags_unconsumed_summary_escape(self):
        result = lint_modules({
            "repro.fusion.fake": """
                class Pool:
                    def fresh_frame(self, kernel):
                        pfn = kernel.buddy.alloc(0)
                        return pfn

                    def leak(self, kernel):
                        pfn = self.fresh_frame(kernel)
                        kernel.clock.advance(1)
            """,
        }, rules=["FLOW003-ip"])
        assert [f.rule_id for f in result.findings] == ["FLOW003-ip"]
        assert "fresh_frame" in result.findings[0].message

    def test_flow003ip_clean_when_consumed(self):
        result = lint_modules({
            "repro.fusion.fake": """
                class Pool:
                    def fresh_frame(self, kernel):
                        pfn = kernel.buddy.alloc(0)
                        return pfn

                    def ok(self, kernel, process, vaddr):
                        pfn = self.fresh_frame(kernel)
                        kernel.map_page(process, vaddr, pfn, 0)
            """,
        }, rules=["FLOW003-ip"])
        assert result.findings == []

    def test_flow004ip_flags_transitive_taint_at_return(self):
        result = lint_modules({
            "repro.runner.fake": """
                import time

                def stamp():
                    return time.time()

                def execute_task(spec, seed):
                    return {"t": stamp()}
            """,
        }, rules=["FLOW004-ip"])
        assert [f.rule_id for f in result.findings] == ["FLOW004-ip"]
        assert result.findings[0].qualname == "repro.runner.fake.execute_task"

    def test_flow005_flags_task_reachable_global_write(self):
        result = lint_modules({
            "repro.runner.task": """
                REGISTRY = {}

                def execute_task(spec, seed):
                    return _worker(spec, seed)

                def _worker(spec, seed):
                    REGISTRY[spec] = seed
                    return {"seed": seed}
            """,
        }, rules=["FLOW005"])
        assert [f.rule_id for f in result.findings] == ["FLOW005"]
        assert "execute_task -> " in result.findings[0].message

    def test_flow005_clean_for_task_local_state(self):
        result = lint_modules({
            "repro.runner.task": """
                def execute_task(spec, seed):
                    return _worker(spec, seed)

                def _worker(spec, seed):
                    registry = {}
                    registry[spec] = seed
                    return registry
            """,
        }, rules=["FLOW005"])
        assert result.findings == []


# ----------------------------------------------------------------------
# Baseline v1 -> v2 migration and rename survival
# ----------------------------------------------------------------------
BASELINE_FIXTURE = {
    "repro.runner.fake": """
        def execute_task(spec, seed):
            return {"seed": hash(spec)}
    """,
}


class TestBaselineMigration:
    def test_version1_file_still_loads(self, tmp_path):
        result = lint_modules(BASELINE_FIXTURE)
        assert result.findings
        v1 = tmp_path / "baseline.json"
        v1.write_text(json.dumps({
            "version": 1,
            "entries": [
                {
                    "rule": f.rule_id,
                    "path": f.path,
                    "message": f.message,
                }
                for f in result.findings
            ],
        }))
        baseline = load_baseline(v1)
        assert baseline.qualname_keys == set()
        filtered = apply_baseline(result, baseline)
        assert filtered.findings == []
        assert filtered.baselined

    def test_path_move_survives_via_qualname_key(self, tmp_path):
        result = lint_modules(BASELINE_FIXTURE)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(result, baseline_path)
        document = json.loads(baseline_path.read_text())
        assert document["version"] == 2
        assert all(entry["qualname"] for entry in document["entries"])
        # Same module linted from a relocated checkout: every path key
        # misses (the prefix changed), but the module anchor keeps the
        # qualname stable so the secondary key accepts every finding.
        moved = lint_project({
            "checkout/elsewhere/repro/runner/fake.py": textwrap.dedent(
                BASELINE_FIXTURE["repro.runner.fake"]
            ),
        })
        assert moved.findings
        assert all(
            f.qualname == "repro.runner.fake.execute_task"
            for f in moved.findings
        )
        baseline = load_baseline(baseline_path)
        assert not any(
            ("checkout/elsewhere/repro/runner/fake.py" == path)
            for _, path, _ in baseline.path_keys
        )
        filtered = apply_baseline(moved, baseline)
        assert filtered.findings == []
        assert filtered.baselined


# ----------------------------------------------------------------------
# Summary cache: content hits, content + dependency invalidation
# ----------------------------------------------------------------------
CALLEE_V1 = """
def passthrough(kernel, pfn):
    return pfn
"""

CALLEE_V2 = """
def passthrough(kernel, pfn):
    fresh = kernel.buddy.alloc(0)
    return fresh
"""


class TestSummaryCache:
    CALLEE_PATH = "src/repro/mem/callee.py"
    CALLER_PATH = "src/repro/mem/caller.py"

    def sources(self, callee: str) -> dict[str, str]:
        return {
            self.CALLEE_PATH: callee,
            self.CALLER_PATH: (
                "from repro.mem.callee import passthrough\n\n"
                "def use(kernel):\n"
                "    pfn = passthrough(kernel, 7)\n"
                "    kernel.clock.advance(1)\n"
            ),
        }

    def test_warm_run_hits_and_matches_cold(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        sources = self.sources(CALLEE_V1)
        cold_cache = SummaryCache(cache_path)
        cold = lint_project(sources, cache=cold_cache)
        cold_cache.save(set(sources))
        assert cold_cache.misses == len(sources)

        warm_cache = SummaryCache(cache_path)
        warm = lint_project(sources, cache=warm_cache)
        assert warm_cache.hits == len(sources)
        assert warm_cache.misses == 0
        assert [f.as_dict() for f in warm.findings] == [
            f.as_dict() for f in cold.findings
        ]

    def test_content_change_invalidates_one_file(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        sources = self.sources(CALLEE_V1)
        cache = SummaryCache(cache_path)
        lint_project(sources, cache=cache)
        cache.save(set(sources))

        changed = dict(sources)
        changed[self.CALLEE_PATH] = CALLEE_V2
        warm_cache = SummaryCache(cache_path)
        lint_project(changed, cache=warm_cache)
        assert warm_cache.hits == len(sources) - 1
        assert warm_cache.misses == 1

    def test_callee_contract_change_recomputes_caller_findings(
        self, tmp_path
    ):
        # The caller file's *content* is untouched, but once the callee
        # starts returning a fresh frame the caller's dependency digest
        # changes and its cached (empty) ip findings must not be
        # trusted: the warm run now reports the leak in the caller.
        cache_path = tmp_path / "cache.json"
        sources = self.sources(CALLEE_V1)
        cache = SummaryCache(cache_path)
        before = lint_project(sources, cache=cache)
        cache.save(set(sources))
        assert [f for f in before.findings if f.rule_id == "FLOW003-ip"] == []

        changed = dict(sources)
        changed[self.CALLEE_PATH] = CALLEE_V2
        warm_cache = SummaryCache(cache_path)
        after = lint_project(changed, cache=warm_cache)
        leaks = [f for f in after.findings if f.rule_id == "FLOW003-ip"]
        assert [f.path for f in leaks] == [self.CALLER_PATH]
        assert after.findings and warm_cache.hits == 1
