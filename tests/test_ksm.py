"""Behavioural tests for the KSM engine (and its CoA variant)."""

from __future__ import annotations

import pytest

from repro.fusion.cow_ksm import CopyOnAccessKsm
from repro.fusion.ksm import Ksm
from repro.kernel.kernel import Kernel
from repro.params import MS, PAGE_SIZE, PAGES_PER_HUGE_PAGE, SECOND

from tests.conftest import dup, fast_fusion, small_spec


def make_ksm_setup(protect_reads: bool = False, frames: int = 4096):
    kernel = Kernel(small_spec(frames=frames))
    engine_cls = CopyOnAccessKsm if protect_reads else Ksm
    if protect_reads:
        engine = engine_cls(fast_fusion())
    else:
        engine = engine_cls(fast_fusion())
    kernel.attach_fusion(engine)
    return kernel, engine


def two_vms_with_duplicates(kernel, count=8, tag="d"):
    a = kernel.create_process("vm-a")
    b = kernel.create_process("vm-b")
    va = a.mmap(count, mergeable=True)
    vb = b.mmap(count, mergeable=True)
    for index in range(count):
        a.write_page(va, index, dup(tag, index))
        b.write_page(vb, index, dup(tag, index))
    return a, b, va, vb


class TestMerging:
    def test_duplicates_merge(self):
        kernel, ksm = make_ksm_setup()
        a, b, va, vb = two_vms_with_duplicates(kernel)
        kernel.idle(2 * SECOND)
        assert ksm.saved_frames() == 8
        shared, sharing = ksm.sharing_pairs()
        assert (shared, sharing) == (8, 16)

    def test_merged_pages_share_frame(self):
        kernel, ksm = make_ksm_setup()
        a, b, va, vb = two_vms_with_duplicates(kernel, count=1)
        kernel.idle(2 * SECOND)
        pfn_a = a.address_space.page_table.walk(va.start).pfn
        pfn_b = b.address_space.page_table.walk(vb.start).pfn
        assert pfn_a == pfn_b
        assert kernel.physmem.is_fused(pfn_a)

    def test_merge_reuses_a_party_frame(self):
        """KSM backs the merged page with one of the two parties'
        frames — the property classic Flip Feng Shui abuses."""
        kernel, ksm = make_ksm_setup()
        a, b, va, vb = two_vms_with_duplicates(kernel, count=1)
        before_a = a.address_space.page_table.walk(va.start).pfn
        before_b = b.address_space.page_table.walk(vb.start).pfn
        kernel.idle(2 * SECOND)
        after = a.address_space.page_table.walk(va.start).pfn
        assert after in (before_a, before_b)

    def test_first_scanned_party_wins(self):
        """The page that entered the unstable tree first donates its
        frame (scan order = registration order)."""
        kernel, ksm = make_ksm_setup()
        a, b, va, vb = two_vms_with_duplicates(kernel, count=1)
        before_a = a.address_space.page_table.walk(va.start).pfn
        kernel.idle(2 * SECOND)
        assert a.address_space.page_table.walk(va.start).pfn == before_a

    def test_unique_pages_not_merged(self):
        kernel, ksm = make_ksm_setup()
        a = kernel.create_process("a")
        vma = a.mmap(8, mergeable=True)
        for index in range(8):
            a.write_page(vma, index, dup("unique", index))
        kernel.idle(2 * SECOND)
        assert ksm.saved_frames() == 0
        assert ksm.stats.merges == 0

    def test_non_mergeable_vma_ignored(self):
        kernel, ksm = make_ksm_setup()
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        va = a.mmap(4, mergeable=False)
        vb = b.mmap(4, mergeable=False)
        for index in range(4):
            a.write_page(va, index, dup("x", index))
            b.write_page(vb, index, dup("x", index))
        kernel.idle(2 * SECOND)
        assert ksm.stats.pages_scanned == 0

    def test_volatile_pages_skipped(self):
        """A page rewritten between scans never merges (checksum gate)."""
        kernel, ksm = make_ksm_setup()
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        va = a.mmap(1, mergeable=True)
        vb = b.mmap(1, mergeable=True)
        b.write_page(vb, 0, dup("v", 99))
        generation = 0
        for _ in range(40):
            a.write_page(va, 0, dup("v", generation))
            generation += 1
            kernel.idle(100_000_000)
        assert ksm.stats.volatile_skips > 0
        assert ksm.saved_frames() == 0

    def test_three_way_merge(self):
        kernel, ksm = make_ksm_setup()
        procs = [kernel.create_process(f"p{i}") for i in range(3)]
        vmas = [p.mmap(1, mergeable=True) for p in procs]
        for p, vma in zip(procs, vmas):
            p.write_page(vma, 0, dup("tri"))
        kernel.idle(2 * SECOND)
        shared, sharing = ksm.sharing_pairs()
        assert (shared, sharing) == (1, 3)
        assert ksm.saved_frames() == 2


class TestUnmerging:
    def test_write_unmerges_via_cow(self):
        kernel, ksm = make_ksm_setup()
        a, b, va, vb = two_vms_with_duplicates(kernel, count=1)
        kernel.idle(2 * SECOND)
        result = a.write_page(va, 0, b"modified")
        assert "unmerge_cow" in result.fault_kinds
        assert a.read_page(va, 0) == b"modified"
        # The other party still sees the original content.
        assert b.read_page(vb, 0) == dup("d", 0)

    def test_read_does_not_unmerge(self):
        kernel, ksm = make_ksm_setup()
        a, b, va, vb = two_vms_with_duplicates(kernel, count=1)
        kernel.idle(2 * SECOND)
        result = a.read_page(va, 0)
        assert ksm.saved_frames() == 1
        walk_a = a.address_space.page_table.walk(va.start)
        walk_b = b.address_space.page_table.walk(vb.start)
        assert walk_a.pfn == walk_b.pfn

    def test_last_unmerge_releases_stable_node(self):
        kernel, ksm = make_ksm_setup()
        a, b, va, vb = two_vms_with_duplicates(kernel, count=1)
        kernel.idle(2 * SECOND)
        node_pfn = a.address_space.page_table.walk(va.start).pfn
        a.write_page(va, 0, b"a-priv")
        assert kernel.physmem.is_fused(node_pfn)
        b.write_page(vb, 0, b"b-priv")
        assert not kernel.physmem.is_fused(node_pfn)
        assert ksm.stats.stable_nodes_released == 1
        assert kernel.buddy.is_free(node_pfn)

    def test_munmap_releases_stable_node(self):
        kernel, ksm = make_ksm_setup()
        a, b, va, vb = two_vms_with_duplicates(kernel, count=1)
        kernel.idle(2 * SECOND)
        node_pfn = a.address_space.page_table.walk(va.start).pfn
        a.munmap(va)
        b.munmap(vb)
        assert not kernel.physmem.is_fused(node_pfn)
        assert kernel.buddy.is_free(node_pfn)

    def test_cow_timing_side_channel_exists(self):
        """Writes to merged pages are measurably slower — the classic
        dedup side channel that VUsion closes (Fig. 5)."""
        kernel, ksm = make_ksm_setup()
        a, b, va, vb = two_vms_with_duplicates(kernel, count=4)
        unshared = a.mmap(4, mergeable=True)
        for index in range(4):
            a.write_page(unshared, index, dup("solo", index))
        kernel.idle(2 * SECOND)
        merged_times = [a.write_page(va, i, dup("d", i)).latency for i in range(4)]
        plain_times = [
            a.write_page(unshared, i, dup("solo", i)).latency for i in range(4)
        ]
        assert min(merged_times) > 2 * max(plain_times)


class TestCopyOnAccessVariant:
    def test_read_unmerges(self):
        kernel, ksm = make_ksm_setup(protect_reads=True)
        a, b, va, vb = two_vms_with_duplicates(kernel, count=2)
        kernel.idle(2 * SECOND)
        assert ksm.saved_frames() == 2
        result = a.read_page(va, 0)
        assert ksm.stats.coa_unmerges == 1
        walk_a = a.address_space.page_table.walk(va.start)
        walk_b = b.address_space.page_table.walk(vb.start)
        assert walk_a.pfn != walk_b.pfn

    def test_content_preserved_across_coa(self):
        kernel, ksm = make_ksm_setup(protect_reads=True)
        a, b, va, vb = two_vms_with_duplicates(kernel, count=2)
        kernel.idle(2 * SECOND)
        assert a.read_page(va, 1) == dup("d", 1)

    def test_refuses_stale_unstable_match(self):
        """A page that changed after entering the unstable tree must
        not be merged with its stale content."""
        kernel, ksm = make_ksm_setup()
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        va = a.mmap(1, mergeable=True)
        vb = b.mmap(1, mergeable=True)
        a.write_page(va, 0, dup("stale"))
        b.write_page(vb, 0, dup("stale"))
        kernel.idle(2 * SECOND)
        # Merged correctly; contents equal.
        assert a.read_page(va, 0) == b.read_page(vb, 0)


class TestKsmWithThp:
    def test_merge_splits_huge_page(self):
        """KSM breaks a THP to merge a subpage — the structural change
        the translation attack observes."""
        kernel = Kernel(small_spec(frames=16384), thp_fault_enabled=True)
        ksm = Ksm(fast_fusion(pages=256))
        kernel.attach_fusion(ksm)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        va = a.mmap(PAGES_PER_HUGE_PAGE, mergeable=True)
        vb = b.mmap(4, mergeable=True, thp_allowed=False)
        a.write(va.start, b"thp-head")  # THP backs the whole region
        a.write(va.start + 9 * PAGE_SIZE, dup("inside-thp"))
        b.write_page(vb, 0, dup("inside-thp"))
        assert a.address_space.page_table.walk(va.start).huge
        kernel.idle(8 * SECOND)
        walk = a.address_space.page_table.walk(va.start + 9 * PAGE_SIZE)
        assert not walk.huge, "THP must be split by the merge"
        assert walk.pte.fused
        assert kernel.stats.thp_splits >= 1


class TestTeardownDropsRmapState:
    """munmap/exit of a mergeable region must drop KSM's references
    into it (unstable refs, checksums) before the frames are freed —
    the streaming fleet driver retires whole VMs mid-scan."""

    def test_munmap_purges_unstable_refs_for_the_region(self):
        kernel, ksm = make_ksm_setup()
        a = kernel.create_process("vm-a")
        va = a.mmap(256, mergeable=True)
        for index in range(256):
            a.write_page(va, index, dup("solo", index))
        # Stop mid-way through the second full pass: checksums are
        # stable, so scanned pages sit in the unstable tree (nothing
        # merges — every page is unique), and the pass has not yet
        # completed, so the tree has not been reset.
        kernel.idle(120 * MS)
        assert any(ref.pid == a.pid for ref in ksm.unstable.values())
        kernel.munmap(a, va)
        assert not any(ref.pid == a.pid for ref in ksm.unstable.values())
        assert not any(key[0] == a.pid for key in ksm._checksums)

    def test_destroyed_process_frames_never_recompared(self):
        kernel, ksm = make_ksm_setup()
        victim = kernel.create_process("victim")
        vv = victim.mmap(256, mergeable=True)
        for index in range(256):
            victim.write_page(vv, index, dup("retire", index))
        kernel.idle(120 * MS)
        assert any(ref.pid == victim.pid for ref in ksm.unstable.values())
        kernel.destroy_process(victim)
        # A new tenant writes the same contents; the scan must insert
        # fresh refs and merge among live pages only — under FrameSan
        # this used to die reading the victim's freed frames.
        a, b, va, vb = two_vms_with_duplicates(kernel, count=4, tag="retire")
        kernel.idle(2 * SECOND)
        assert ksm.saved_frames() > 0
        assert all(kernel.find_process(ref.pid) is not None
                   for ref in ksm.unstable.values())
