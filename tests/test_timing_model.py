"""Unit tests for the composite access-timing model and cost params."""

from __future__ import annotations

from repro.cache.llc import LastLevelCache
from repro.cache.timing import AccessTimer
from repro.dram.geometry import DramMapper
from repro.params import (
    CacheGeometry,
    CostModel,
    DramGeometry,
    MachineSpec,
    PAGE_SIZE,
    TlbGeometry,
)


def make_timer():
    costs = CostModel()
    llc = LastLevelCache(CacheGeometry())
    dram = DramMapper(DramGeometry(), 4096)
    return costs, llc, AccessTimer(costs, llc, dram)


class TestDramRowBuffer:
    def test_first_access_misses_row(self):
        costs, _llc, timer = make_timer()
        assert timer.dram_access(0) == costs.dram_row_miss

    def test_same_row_hits(self):
        costs, _llc, timer = make_timer()
        timer.dram_access(0)
        assert timer.dram_access(1) == costs.dram_row_hit  # row spans 2 pages

    def test_other_bank_keeps_row_open(self):
        costs, _llc, timer = make_timer()
        timer.dram_access(0)
        timer.dram_access(2)  # different bank
        assert timer.dram_access(0) == costs.dram_row_hit

    def test_row_conflict_in_same_bank(self):
        costs, _llc, timer = make_timer()
        timer.dram_access(0)
        timer.dram_access(16)  # same bank, next row
        assert timer.dram_access(0) == costs.dram_row_miss


class TestMemoryAccess:
    def test_cacheable_hit_cheap(self):
        costs, _llc, timer = make_timer()
        timer.memory_access(0x1000, cacheable=True)
        assert timer.memory_access(0x1000, cacheable=True) == costs.llc_hit

    def test_uncached_never_allocates(self):
        costs, llc, timer = make_timer()
        first = timer.memory_access(0x2000, cacheable=False)
        assert first >= costs.uncached_access
        assert not llc.contains_line(0x2000)

    def test_uncached_still_opens_rows(self):
        """Reading an uncacheable page still hammers its DRAM row."""
        costs, _llc, timer = make_timer()
        timer.memory_access(0x0, cacheable=False)
        # The row is now open: a cacheable miss to the same row is cheap.
        second = timer.memory_access(PAGE_SIZE, cacheable=True)
        assert second == costs.llc_hit + costs.dram_row_hit

    def test_translation_costs(self):
        costs, _llc, timer = make_timer()
        assert timer.translation(True, 4) == costs.tlb_hit
        walk4 = timer.translation(False, 4)
        walk3 = timer.translation(False, 3)
        assert walk4 - walk3 == costs.page_walk_per_level


class TestGeometryParams:
    def test_paper_cache_geometry(self):
        geometry = CacheGeometry()
        assert geometry.num_sets == 8192
        assert geometry.num_colors == 128

    def test_tlb_sets(self):
        assert TlbGeometry(entries=64, ways=4).num_sets == 16

    def test_dram_row_stride(self):
        assert DramGeometry().row_stride_pages == 16

    def test_machine_scaling(self):
        spec = MachineSpec(total_frames=1000)
        bigger = spec.scaled(2000)
        assert bigger.total_frames == 2000
        assert bigger.cache == spec.cache
        assert bigger.total_bytes == 2000 * PAGE_SIZE

    def test_side_channel_orderings(self):
        """The cost model must preserve the latency orderings every
        attack in the paper depends on."""
        costs = CostModel()
        assert costs.llc_hit < costs.llc_hit + costs.dram_row_hit
        assert costs.dram_row_hit < costs.dram_row_miss
        assert costs.tlb_hit < costs.page_walk_per_level
        # A fault dwarfs any plain access.
        assert costs.fault_trap > 4 * (
            costs.tlb_hit + 4 * costs.page_walk_per_level
            + costs.llc_hit + costs.dram_row_miss
        )
