"""Unit tests for the composite access-timing model and cost params."""

from __future__ import annotations

from repro.cache.llc import LastLevelCache
from repro.cache.timing import AccessTimer
from repro.core.vusion import Vusion
from repro.dram.geometry import DramMapper
from repro.fusion.ksm import Ksm
from repro.fusion.wpf import WindowsPageFusion
from repro.kernel.kernel import Kernel
from repro.mem.content import tagged_content
from repro.params import (
    CacheGeometry,
    CostModel,
    DramGeometry,
    FusionConfig,
    MachineSpec,
    MS,
    PAGE_SIZE,
    TlbGeometry,
    VusionConfig,
    WpfConfig,
)


def make_timer():
    costs = CostModel()
    llc = LastLevelCache(CacheGeometry())
    dram = DramMapper(DramGeometry(), 4096)
    return costs, llc, AccessTimer(costs, llc, dram)


class TestDramRowBuffer:
    def test_first_access_misses_row(self):
        costs, _llc, timer = make_timer()
        assert timer.dram_access(0) == costs.dram_row_miss

    def test_same_row_hits(self):
        costs, _llc, timer = make_timer()
        timer.dram_access(0)
        assert timer.dram_access(1) == costs.dram_row_hit  # row spans 2 pages

    def test_other_bank_keeps_row_open(self):
        costs, _llc, timer = make_timer()
        timer.dram_access(0)
        timer.dram_access(2)  # different bank
        assert timer.dram_access(0) == costs.dram_row_hit

    def test_row_conflict_in_same_bank(self):
        costs, _llc, timer = make_timer()
        timer.dram_access(0)
        timer.dram_access(16)  # same bank, next row
        assert timer.dram_access(0) == costs.dram_row_miss


class TestMemoryAccess:
    def test_cacheable_hit_cheap(self):
        costs, _llc, timer = make_timer()
        timer.memory_access(0x1000, cacheable=True)
        assert timer.memory_access(0x1000, cacheable=True) == costs.llc_hit

    def test_uncached_never_allocates(self):
        costs, llc, timer = make_timer()
        first = timer.memory_access(0x2000, cacheable=False)
        assert first >= costs.uncached_access
        assert not llc.contains_line(0x2000)

    def test_uncached_still_opens_rows(self):
        """Reading an uncacheable page still hammers its DRAM row."""
        costs, _llc, timer = make_timer()
        timer.memory_access(0x0, cacheable=False)
        # The row is now open: a cacheable miss to the same row is cheap.
        second = timer.memory_access(PAGE_SIZE, cacheable=True)
        assert second == costs.llc_hit + costs.dram_row_hit

    def test_translation_costs(self):
        costs, _llc, timer = make_timer()
        assert timer.translation(True, 4) == costs.tlb_hit
        walk4 = timer.translation(False, 4)
        walk3 = timer.translation(False, 3)
        assert walk4 - walk3 == costs.page_walk_per_level


class TestGeometryParams:
    def test_paper_cache_geometry(self):
        geometry = CacheGeometry()
        assert geometry.num_sets == 8192
        assert geometry.num_colors == 128

    def test_tlb_sets(self):
        assert TlbGeometry(entries=64, ways=4).num_sets == 16

    def test_dram_row_stride(self):
        assert DramGeometry().row_stride_pages == 16

    def test_machine_scaling(self):
        spec = MachineSpec(total_frames=1000)
        bigger = spec.scaled(2000)
        assert bigger.total_frames == 2000
        assert bigger.cache == spec.cache
        assert bigger.total_bytes == 2000 * PAGE_SIZE

    def test_side_channel_orderings(self):
        """The cost model must preserve the latency orderings every
        attack in the paper depends on."""
        costs = CostModel()
        assert costs.llc_hit < costs.llc_hit + costs.dram_row_hit
        assert costs.dram_row_hit < costs.dram_row_miss
        assert costs.tlb_hit < costs.page_walk_per_level
        # A fault dwarfs any plain access.
        assert costs.fault_trap > 4 * (
            costs.tlb_hit + 4 * costs.page_walk_per_level
            + costs.llc_hit + costs.dram_row_miss
        )


class TestFingerprintChargeNeutrality:
    """The fingerprint/replay layer must never move the simulated clock.

    Two kernels run the identical workload in lockstep, one with the
    cache on and one with it off; after *every* step their clocks must
    agree exactly — not just at the end, where compensating errors
    could hide.  The cache-on run must also demonstrably replay (else
    this test would vacuously compare two identical slow paths).
    """

    ENGINES = {
        "ksm": (
            lambda: Ksm(FusionConfig(pages_per_scan=64, scan_interval=20 * MS)),
            "replayed_charged",
        ),
        "wpf": (
            lambda: WindowsPageFusion(WpfConfig(pass_interval=60 * MS)),
            "replayed_passes",
        ),
        "vusion": (
            lambda: Vusion(
                VusionConfig(
                    random_pool_frames=128,
                    min_idle_ns=50 * MS,
                    rerandomize_each_scan=False,
                ),
                FusionConfig(pages_per_scan=64, scan_interval=20 * MS),
            ),
            "replayed_pure",
        ),
    }

    def _lockstep(self, engine_name):
        factory, replay_counter = self.ENGINES[engine_name]
        kernels = []
        for enabled in (True, False):
            spec = MachineSpec(
                total_frames=2048, seed=1017, fingerprint_enabled=enabled
            )
            kernel = Kernel(spec)
            kernel.attach_fusion(factory())
            kernels.append(kernel)
        on, off = kernels

        def step(fn):
            fn(on)
            fn(off)
            assert on.clock.now == off.clock.now, (
                f"clock diverged under {engine_name}: "
                f"on={on.clock.now} off={off.clock.now}"
            )

        procs = {}
        for kernel in kernels:
            procs[kernel] = [kernel.create_process(f"p{i}") for i in range(2)]
        vmas = {k: [p.mmap(10, mergeable=True) for p in procs[k]] for k in kernels}

        for proc_index in range(2):
            for index in range(10):
                step(
                    lambda k, p=proc_index, i=index: procs[k][p].write(
                        vmas[k][p].start + i * PAGE_SIZE,
                        tagged_content("lockstep", i % 3),
                    )
                )
        # Many short idles: per-tick clock trajectory, including the
        # rounds where replay kicks in on the cache-on side.
        for _ in range(60):
            step(lambda k: k.idle(20 * MS))
        # Disturb one page, then settle again (taint and re-converge).
        step(
            lambda k: procs[k][0].write(
                vmas[k][0].start, tagged_content("lockstep-dirty", 99)
            )
        )
        for _ in range(30):
            step(lambda k: k.idle(20 * MS))

        replays = on.fusion.incremental_stats().get(replay_counter, 0)
        assert replays > 0, (
            f"{engine_name} never replayed ({replay_counter}=0); "
            "the charge-neutrality comparison is vacuous"
        )
        assert off.fusion.incremental_stats().get(replay_counter, 0) == 0

    def test_ksm_lockstep(self):
        self._lockstep("ksm")

    def test_wpf_lockstep(self):
        self._lockstep("wpf")

    def test_vusion_lockstep(self):
        self._lockstep("vusion")
