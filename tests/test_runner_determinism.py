"""Parallel-vs-serial determinism of the experiment runner.

The acceptance contract: ``--jobs N`` must produce byte-identical
result payloads to ``--jobs 1`` for the same root seed — rows, series,
checks and notes — because every task is a pure function of
``(spec, derived seed)`` and seeds derive from task identity alone.
"""

from __future__ import annotations

import pytest

from repro.runner import (
    RunnerConfig,
    TaskSpec,
    canonical_json,
    derive_seed,
    run_tasks,
)

#: Fast real experiments plus one attack cell: enough to cover the
#: experiment and attack execution paths without a minutes-long sweep.
TASKS = [
    TaskSpec.experiment("fig3"),
    TaskSpec.experiment("fig5"),
    TaskSpec.attack("cow-timing", target="vusion"),
]


def _payload_bytes(results):
    return [canonical_json(r.payload) for r in results]


class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def serial_results(self):
        return run_tasks(TASKS, root_seed=1017,
                         config=RunnerConfig(jobs=1))

    def test_parallel_matches_serial(self, serial_results):
        parallel = run_tasks(TASKS, root_seed=1017,
                             config=RunnerConfig(jobs=4))
        assert _payload_bytes(parallel) == _payload_bytes(serial_results)

    def test_in_process_matches_pool(self, serial_results):
        in_process = run_tasks(TASKS, root_seed=1017,
                               config=RunnerConfig(force_serial=True))
        assert _payload_bytes(in_process) == _payload_bytes(serial_results)

    def test_seeds_are_derived_not_positional(self, serial_results):
        # Reordering the task list must not change any task's seed or
        # payload — identity, not position, drives derivation.
        reordered = run_tasks(list(reversed(TASKS)), root_seed=1017,
                              config=RunnerConfig(jobs=2))
        by_id = {r.task_id: canonical_json(r.payload) for r in reordered}
        for result in serial_results:
            assert by_id[result.task_id] == canonical_json(result.payload)
            assert result.seed == derive_seed(1017, result.task_id)

    def test_different_root_seed_changes_task_seeds(self):
        a = run_tasks([TaskSpec.selftest("s")], root_seed=1,
                      config=RunnerConfig(force_serial=True))
        b = run_tasks([TaskSpec.selftest("s")], root_seed=2,
                      config=RunnerConfig(force_serial=True))
        assert a[0].seed != b[0].seed


class TestCrashRetryDeterminism:
    def test_payload_identical_after_crash_retry(self):
        """A task that crashes once and then succeeds must produce the
        same payload a clean run produces (retries re-derive nothing)."""
        clean = run_tasks(
            [TaskSpec.selftest("d", value=11)],
            root_seed=77, config=RunnerConfig(jobs=1),
        )
        crashy = run_tasks(
            [TaskSpec.selftest("d", value=11, mode="crash", fail_attempts=1)],
            root_seed=77,
            config=RunnerConfig(jobs=1, max_retries=2, retry_backoff_s=0.02),
        )
        assert crashy[0].attempts == 2
        # Injection params never reach the payload and the task id (and
        # so the derived seed) ignores them: the payloads match exactly.
        assert canonical_json(crashy[0].payload) == canonical_json(
            clean[0].payload
        )
