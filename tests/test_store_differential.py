"""Differential proof that the columnar frame store is transparent.

The columnar backend changes the *representation* of frame contents
(interned content ids over a hash-consed arena) but must not change a
single observable of the simulation: simulated time, merge behaviour,
attack verdicts and runner artifacts have to be byte-identical to the
legacy one-payload-per-frame store.  Four layers pin that down:

* lockstep raw :class:`~repro.mem.physmem.PhysicalMemory` operation
  sequences against both backends, comparing every observable after
  every operation;
* full kernels under every fusion engine running a scripted
  duplicate-heavy workload, checkpointing clock, savings, samples and
  frame layout;
* the runner: ``execute_task`` payloads (experiments and Table 1
  attack cells) rendered to canonical JSON under each backend;
* FrameSan-sanitized runs, which must also be identical — and end with
  a clean audit, including the arena accounting cross-check.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.metrics import take_sample
from repro.kernel.kernel import Kernel
from repro.mem.content import tagged_content
from repro.mem.physmem import FRAME_STORE_ENV, PhysicalMemory, FrameType
from repro.params import MachineSpec, MS, PAGE_SIZE, SECOND
from repro.runner import TaskSpec, canonical_json, execute_task

from tests.test_fingerprint_differential import ENGINES

STORES = ("legacy", "columnar")

# ----------------------------------------------------------------------
# Layer 1: lockstep raw operation sequences
# ----------------------------------------------------------------------

RAW_FRAMES = 24

raw_op = st.one_of(
    st.tuples(st.just("write"), st.integers(0, RAW_FRAMES - 1),
              st.integers(0, 11)),
    st.tuples(st.just("copy"), st.integers(0, RAW_FRAMES - 1),
              st.integers(0, RAW_FRAMES - 1)),
    st.tuples(st.just("corrupt"), st.integers(0, RAW_FRAMES - 1),
              st.integers(0, PAGE_SIZE - 1)),
    st.tuples(st.just("digest"), st.integers(0, RAW_FRAMES - 1), st.just(0)),
    st.tuples(st.just("retype"), st.integers(0, RAW_FRAMES - 1),
              st.integers(0, len(FrameType) - 1)),
    st.tuples(st.just("rmap"), st.integers(0, RAW_FRAMES - 1),
              st.integers(0, 3)),
)


def observables(physmem: PhysicalMemory) -> tuple:
    """Everything a caller can see through the public surface."""
    return (
        physmem.contents_snapshot(),
        [physmem.version(pfn) for pfn in range(physmem.num_frames)],
        [physmem.generation(pfn) for pfn in range(physmem.num_frames)],
        physmem.mutation_epoch,
        physmem.frames_in_use(),
        physmem.type_histogram(),
        list(physmem.mapped_frames()),
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=st.lists(raw_op, min_size=1, max_size=100))
def test_raw_lockstep(ops):
    """Both backends expose identical observables after every op."""
    legacy = PhysicalMemory(RAW_FRAMES, frame_store="legacy")
    columnar = PhysicalMemory(RAW_FRAMES, frame_store="columnar")
    rmapped: set[tuple[int, int]] = set()
    for action, a, b in ops:
        for physmem in (legacy, columnar):
            if action == "write":
                physmem.write(a, tagged_content("diff", b))
            elif action == "copy":
                physmem.copy(a, b)
            elif action == "corrupt":
                physmem.corrupt_bit(a, b, b % 8)
            elif action == "retype":
                physmem.set_frame_type(a, list(FrameType)[b])
            elif action == "rmap":
                if (a, b) in rmapped:
                    physmem.rmap_remove(a, 1, b * PAGE_SIZE)
                else:
                    physmem.rmap_add(a, 1, b * PAGE_SIZE)
        if action == "rmap":
            rmapped.symmetric_difference_update({(a, b)})
        if action == "digest":
            assert legacy.digest(a) == columnar.digest(a)
        assert observables(legacy) == observables(columnar)

    # Full-sweep digest parity, then cached re-reads stay in parity.
    for pfn in range(RAW_FRAMES):
        assert legacy.digest(pfn) == columnar.digest(pfn)
        assert legacy.digest(pfn) == columnar.digest(pfn)
    # Batch API agrees with the per-frame path on both backends.
    pfns = list(range(RAW_FRAMES)) * 2
    assert legacy.digests_many(pfns) == columnar.digests_many(pfns)


# ----------------------------------------------------------------------
# Layer 2: full kernels under every engine, optionally sanitized
# ----------------------------------------------------------------------

NUM_PROCS = 2
PAGES_PER_PROC = 12


def build_kernel(engine_name: str, store: str, sanitize: bool) -> Kernel:
    spec = MachineSpec(total_frames=1024, seed=1017, frame_store=store)
    kernel = Kernel(spec, sanitize=sanitize or None)
    kernel.attach_fusion(ENGINES[engine_name]())
    return kernel


def scripted_workload(kernel: Kernel):
    """Deterministic duplicate-heavy run; yields at each checkpoint."""
    processes = [kernel.create_process(f"p{i}") for i in range(NUM_PROCS)]
    vmas = [p.mmap(PAGES_PER_PROC, mergeable=True) for p in processes]
    for process, vma in zip(processes, vmas):
        for index in range(PAGES_PER_PROC):
            process.write(
                vma.start + index * PAGE_SIZE, tagged_content("seed", index % 4)
            )
    yield "seeded"
    kernel.idle(300 * MS)  # scan daemons merge duplicates
    yield "merged"
    # Writes break some merges (CoW / unmerge paths), flips hit others.
    for step in range(6):
        process = processes[step % NUM_PROCS]
        vaddr = vmas[step % NUM_PROCS].start + (step % PAGES_PER_PROC) * PAGE_SIZE
        process.write(vaddr, tagged_content("post", step))
        kernel.idle(60 * MS)
        yield f"write-{step}"
    walk = processes[0].address_space.page_table.walk(vmas[0].start)
    if walk is not None:
        kernel.physmem.corrupt_bit(walk.frame_for(vmas[0].start), 100, 3)
    kernel.idle(SECOND)
    yield "settled"


def checkpoint(kernel: Kernel) -> tuple:
    physmem = kernel.physmem
    sample = take_sample(kernel)
    return (
        kernel.clock.now,
        kernel.fusion.saved_frames(),
        (sample.t_ns, sample.frames_in_use, sample.saved_frames,
         sample.huge_pages),
        physmem.contents_snapshot(),
        physmem.type_histogram(),
        list(physmem.mapped_frames()),
        [physmem.refcount(pfn) for pfn in range(physmem.num_frames)],
    )


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
def test_engine_runs_are_identical_across_stores(engine_name):
    """Same engine, same seed, same workload: every checkpoint equal."""
    kernels = {s: build_kernel(engine_name, s, sanitize=False) for s in STORES}
    runs = {s: scripted_workload(kernels[s]) for s in STORES}
    for labels in zip(*runs.values()):
        assert labels[0] == labels[1]
        legacy_state = checkpoint(kernels["legacy"])
        columnar_state = checkpoint(kernels["columnar"])
        assert legacy_state == columnar_state, (
            f"{engine_name} diverged at checkpoint {labels[0]!r}"
        )


@pytest.mark.parametrize("engine_name", ["ksm", "vusion"])
def test_sanitized_runs_are_identical_and_audit_clean(engine_name):
    """FrameSan on: still lockstep-identical, and the end-of-run audit
    (including the arena accounting cross-check) is clean."""
    kernels = {s: build_kernel(engine_name, s, sanitize=True) for s in STORES}
    runs = {s: scripted_workload(kernels[s]) for s in STORES}
    for _labels in zip(*runs.values()):
        assert checkpoint(kernels["legacy"]) == checkpoint(kernels["columnar"])
    for kernel in kernels.values():
        assert kernel.sanitizer is not None
        kernel.sanitizer.assert_clean(kernel.fusion)


# ----------------------------------------------------------------------
# Layers 3 and 4: runner artifacts and Table 1 attack verdicts
# ----------------------------------------------------------------------

#: Fast experiment coverage plus one Table 1 cell per engine family.
RUNNER_TASKS = {
    "fig3": TaskSpec.experiment("fig3"),
    "fig5": TaskSpec.experiment("fig5"),
    "cow-timing@vusion": TaskSpec.attack("cow-timing", target="vusion"),
    "flip-feng-shui@ksm": TaskSpec.attack("flip-feng-shui", target="ksm"),
    "page-sharing@wpf": TaskSpec.attack("page-sharing", target="wpf"),
}


def run_with_store(monkeypatch, spec: TaskSpec, store: str) -> dict:
    monkeypatch.setenv(FRAME_STORE_ENV, store)
    return execute_task(spec, seed=1017)


@pytest.mark.parametrize("task_name", sorted(RUNNER_TASKS))
def test_runner_artifacts_byte_identical(task_name, monkeypatch):
    """Canonical artifact JSON is byte-for-byte backend-independent."""
    spec = RUNNER_TASKS[task_name]
    payloads = {
        store: run_with_store(monkeypatch, spec, store) for store in STORES
    }
    assert canonical_json(payloads["legacy"]) == canonical_json(
        payloads["columnar"]
    )
    if spec.kind == "attack":
        # The Table 1 verdict itself, called out explicitly: page fusion
        # attack outcomes cannot depend on the content representation.
        assert payloads["legacy"]["success"] == payloads["columnar"]["success"]
        assert (
            payloads["legacy"]["mitigated_by"]
            == payloads["columnar"]["mitigated_by"]
        )
