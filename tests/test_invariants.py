"""System-wide invariants under randomized workloads (hypothesis).

A reference model tracks what every process wrote to every page; after
arbitrary interleavings of writes, reads, scan activity and unmapping,
under every fusion engine:

* reads always return what the owner last wrote (fusion is invisible),
* each frame's refcount equals its rmap entries plus engine pins,
* no frame is simultaneously free and mapped,
* fused frames are genuinely shared (identical content across mappers).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.vusion import Vusion
from repro.fusion.cow_ksm import CopyOnAccessKsm
from repro.fusion.ksm import Ksm
from repro.fusion.wpf import WindowsPageFusion
from repro.fusion.zeropage import ZeroPageFusion
from repro.kernel.kernel import Kernel, ZERO_FRAME
from repro.mem.content import tagged_content
from repro.params import (
    FusionConfig,
    MINUTE,
    MS,
    PAGE_SIZE,
    VusionConfig,
    WpfConfig,
)

from tests.conftest import small_spec

ENGINES = {
    "ksm": lambda: Ksm(FusionConfig(pages_per_scan=64, scan_interval=20 * MS)),
    "coa-ksm": lambda: CopyOnAccessKsm(
        FusionConfig(pages_per_scan=64, scan_interval=20 * MS)
    ),
    "wpf": lambda: WindowsPageFusion(WpfConfig(pass_interval=MINUTE)),
    "zeropage": lambda: ZeroPageFusion(
        FusionConfig(pages_per_scan=64, scan_interval=20 * MS)
    ),
    "vusion": lambda: Vusion(
        VusionConfig(random_pool_frames=128, min_idle_ns=100 * MS),
        FusionConfig(pages_per_scan=64, scan_interval=20 * MS),
    ),
    "none": lambda: None,
}

PAGES_PER_PROC = 6
NUM_PROCS = 3

operation = st.tuples(
    st.sampled_from(["write", "write_dup", "write_zero", "read", "idle"]),
    st.integers(0, NUM_PROCS - 1),
    st.integers(0, PAGES_PER_PROC - 1),
    st.integers(0, 7),
)


def check_global_invariants(kernel, engine) -> None:
    physmem = kernel.physmem
    pins = set()
    if engine is not None and hasattr(engine, "_nodes_by_pfn"):
        pins = set(engine._nodes_by_pfn)
    if isinstance(engine, ZeroPageFusion):
        pins = {engine._zero_frame}
    for pfn in physmem.mapped_frames():
        expected = len(physmem.rmap(pfn))
        if pfn == ZERO_FRAME:
            expected += 1  # boot pin
        if pfn in pins:
            expected += 1  # stable-tree pin
        assert physmem.refcount(pfn) == expected, f"refcount skew on pfn {pfn}"
        assert not kernel.buddy.is_free(pfn), f"pfn {pfn} free while mapped"
    # Fused frames hold one content for all mappers by construction;
    # verify every mapper actually translates to that frame.
    for pfn in list(pins):
        for pid, vaddr in physmem.rmap(pfn):
            process = kernel.find_process(pid)
            walk = process.address_space.page_table.walk(vaddr)
            assert walk is not None and walk.frame_for(vaddr) == pfn


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=st.lists(operation, min_size=1, max_size=60))
def test_contents_and_refcounts_under_random_ops(engine_name, ops):
    kernel = Kernel(small_spec(frames=2048))
    engine = ENGINES[engine_name]()
    if engine is not None:
        kernel.attach_fusion(engine)
    processes = [kernel.create_process(f"p{i}") for i in range(NUM_PROCS)]
    vmas = [p.mmap(PAGES_PER_PROC, mergeable=True) for p in processes]
    model: dict[tuple[int, int], bytes] = {}

    for action, proc_index, page_index, salt in ops:
        process = processes[proc_index]
        vaddr = vmas[proc_index].start + page_index * PAGE_SIZE
        if action == "write":
            content = tagged_content("inv", proc_index, page_index, salt)
            process.write(vaddr, content)
            model[(proc_index, page_index)] = content
        elif action == "write_dup":
            # Deliberately duplicated across processes (merge bait).
            content = tagged_content("inv-dup", salt)
            process.write(vaddr, content)
            model[(proc_index, page_index)] = content
        elif action == "write_zero":
            process.write(vaddr, b"")
            model[(proc_index, page_index)] = b""
        elif action == "read":
            expected = model.get((proc_index, page_index), b"")
            assert process.read(vaddr).content == expected
        else:  # idle: let scanning/fusion run
            kernel.idle(50 * MS * (salt + 1))

    kernel.idle(500 * MS)
    # Final full consistency sweep: fusion must be invisible to owners.
    for (proc_index, page_index), expected in model.items():
        vaddr = vmas[proc_index].start + page_index * PAGE_SIZE
        assert processes[proc_index].read(vaddr).content == expected
    check_global_invariants(kernel, engine)


@pytest.mark.parametrize("engine_name", ["ksm", "vusion", "wpf"])
def test_munmap_after_fusion_leaves_no_leaks(engine_name):
    """Tearing everything down returns the machine to a clean state."""
    kernel = Kernel(small_spec(frames=4096))
    engine = ENGINES[engine_name]()
    kernel.attach_fusion(engine)
    processes = [kernel.create_process(f"p{i}") for i in range(3)]
    vmas = []
    for process in processes:
        vma = process.mmap(16, mergeable=True)
        vmas.append(vma)
        for index in range(16):
            process.write(vma.start + index * PAGE_SIZE, tagged_content("leak", index))
    kernel.idle(2 * MINUTE)
    saved = engine.saved_frames()
    assert saved > 0, "fusion should have happened"
    for process, vma in zip(processes, vmas):
        process.munmap(vma)
    kernel.idle(MINUTE)  # drain deferred frees
    if isinstance(engine, Vusion):
        engine.deferred.drain()
    # All stable nodes must be gone and their frames recoverable.
    shared, sharing = engine.sharing_pairs()
    assert (shared, sharing) == (0, 0)
    # Only the reserved kernel frames (and VUsion's pool, typed FREE)
    # remain in use.
    assert kernel.frames_in_use() == 16
