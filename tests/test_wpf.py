"""Behavioural tests for Windows Page Fusion."""

from __future__ import annotations

from repro.fusion.wpf import WindowsPageFusion
from repro.kernel.kernel import Kernel
from repro.params import MINUTE, WpfConfig

from tests.conftest import dup, small_spec


def make_wpf_setup(frames: int = 4096):
    kernel = Kernel(small_spec(frames=frames))
    engine = WindowsPageFusion(WpfConfig(pass_interval=15 * MINUTE))
    kernel.attach_fusion(engine)
    return kernel, engine


def run_pass(kernel):
    kernel.idle(15 * MINUTE + 1)


def pair_setup(kernel, count=4, tag="w"):
    a = kernel.create_process("a")
    b = kernel.create_process("b")
    va = a.mmap(count, mergeable=True)
    vb = b.mmap(count, mergeable=True)
    for index in range(count):
        a.write_page(va, index, dup(tag, index))
        b.write_page(vb, index, dup(tag, index))
    return a, b, va, vb


class TestWpfMerging:
    def test_duplicates_merge_on_pass(self):
        kernel, wpf = make_wpf_setup()
        a, b, va, vb = pair_setup(kernel)
        assert wpf.saved_frames() == 0
        run_pass(kernel)
        assert wpf.saved_frames() == 4
        shared, sharing = wpf.sharing_pairs()
        assert (shared, sharing) == (4, 8)

    def test_new_frames_back_merges(self):
        """Unlike KSM, neither party's frame backs the fused page."""
        kernel, wpf = make_wpf_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        before_a = a.address_space.page_table.walk(va.start).pfn
        before_b = b.address_space.page_table.walk(vb.start).pfn
        run_pass(kernel)
        after = a.address_space.page_table.walk(va.start).pfn
        assert after not in (before_a, before_b)
        assert after == b.address_space.page_table.walk(vb.start).pfn

    def test_stable_frames_from_top_of_memory(self):
        kernel, wpf = make_wpf_setup()
        pair_setup(kernel, count=6)
        run_pass(kernel)
        frames = sorted(wpf._nodes_by_pfn)
        assert frames, "nodes must exist"
        # All node frames live in the topmost region of memory.
        assert min(frames) >= kernel.spec.total_frames - 64

    def test_allocation_order_follows_hash_order(self):
        """Stable frames are handed out in content-hash order from the
        top of memory — the attacker-predictable layout of Fig. 3."""
        from repro.mem.content import content_digest

        kernel, wpf = make_wpf_setup()
        a, b, va, vb = pair_setup(kernel, count=6, tag="order")
        run_pass(kernel)
        contents = [dup("order", index) for index in range(6)]
        by_hash = sorted(contents, key=content_digest)
        frames_in_hash_order = []
        for content in by_hash:
            walk = a.address_space.page_table.walk(
                va.start + contents.index(content) * 4096
            )
            frames_in_hash_order.append(walk.pfn)
        assert frames_in_hash_order == sorted(
            frames_in_hash_order, reverse=True
        ), "hash rank k gets the k-th frame from the top"

    def test_merge_with_existing_node_next_pass(self):
        kernel, wpf = make_wpf_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        run_pass(kernel)
        c = kernel.create_process("c")
        vc = c.mmap(1, mergeable=True)
        c.write_page(vc, 0, dup("w", 0))
        run_pass(kernel)
        shared, sharing = wpf.sharing_pairs()
        assert (shared, sharing) == (1, 3)

    def test_single_copies_not_merged(self):
        kernel, wpf = make_wpf_setup()
        a = kernel.create_process("a")
        va = a.mmap(4, mergeable=True)
        for index in range(4):
            a.write_page(va, index, dup("solo", index))
        run_pass(kernel)
        assert wpf.saved_frames() == 0


class TestWpfUnmergeAndReuse:
    def test_write_unmerges(self):
        kernel, wpf = make_wpf_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        run_pass(kernel)
        result = a.write_page(va, 0, b"priv")
        assert "unmerge_cow" in result.fault_kinds
        assert b.read_page(vb, 0) == dup("w", 0)

    def test_node_released_when_last_mapper_leaves(self):
        kernel, wpf = make_wpf_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        run_pass(kernel)
        node_pfn = a.address_space.page_table.walk(va.start).pfn
        a.write_page(va, 0, b"pa")
        b.write_page(vb, 0, b"pb")
        assert kernel.buddy.is_free(node_pfn)
        assert wpf.stats.stable_nodes_released == 1

    def test_cross_pass_frame_reuse(self):
        """After full unmerge, the next pass reuses the same top-of-
        memory frames — the reuse predictability of Fig. 3."""
        kernel, wpf = make_wpf_setup()
        a, b, va, vb = pair_setup(kernel, count=6, tag="reuse1")
        run_pass(kernel)
        first_pass_frames = set(wpf._nodes_by_pfn)
        # Unmerge everything (writes new, again pairwise-duplicate data).
        for index in range(6):
            a.write_page(va, index, dup("reuse2", index))
            b.write_page(vb, index, dup("reuse2", index))
        assert not wpf._nodes_by_pfn, "all nodes released"
        run_pass(kernel)
        second_pass_frames = set(wpf._nodes_by_pfn)
        overlap = len(first_pass_frames & second_pass_frames)
        assert overlap == len(first_pass_frames), "near-perfect reuse"

    def test_zero_pages_merge_to_one_node(self):
        kernel, wpf = make_wpf_setup()
        a = kernel.create_process("a")
        va = a.mmap(6, mergeable=True)
        for index in range(6):
            a.write_page(va, index, b"tmp")
            a.write_page(va, index, b"")  # back to zero content
        run_pass(kernel)
        shared, sharing = wpf.sharing_pairs()
        assert shared == 1
        assert sharing == 6
