"""Property and unit tests for the content-keyed RB and AVL trees."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.fusion.avl import AvlTree
from repro.fusion.rbtree import RedBlackTree


class Box:
    """A hashable value with a mutable key (models a drifting page)."""

    __slots__ = ("key",)

    def __init__(self, key: bytes) -> None:
        self.key = key


def make_rb(values=()):
    tree = RedBlackTree(key_of=lambda box: box.key)
    for value in values:
        tree.insert(value)
    return tree


class TestRedBlackBasics:
    def test_insert_search(self):
        box = Box(b"m")
        tree = make_rb([box])
        assert tree.search(b"m") is box
        assert tree.search(b"x") is None

    def test_len_and_contains(self):
        boxes = [Box(bytes([i])) for i in range(10)]
        tree = make_rb(boxes)
        assert len(tree) == 10
        assert boxes[3] in tree

    def test_duplicate_value_rejected(self):
        box = Box(b"a")
        tree = make_rb([box])
        with pytest.raises(ValueError):
            tree.insert(box)

    def test_remove(self):
        boxes = [Box(bytes([i])) for i in range(20)]
        tree = make_rb(boxes)
        for box in boxes[::2]:
            tree.remove(box)
        assert len(tree) == 10
        tree.check_invariants()
        for box in boxes[::2]:
            assert tree.search(box.key) is None
        for box in boxes[1::2]:
            assert tree.search(box.key) is box

    def test_discard_missing(self):
        tree = make_rb()
        assert not tree.discard(Box(b"a"))

    def test_clear(self):
        tree = make_rb([Box(b"a"), Box(b"b")])
        tree.clear()
        assert len(tree) == 0
        assert tree.search(b"a") is None

    def test_key_drift_degrades_search_but_not_removal(self):
        """A drifted key may no longer be findable (like KSM's unstable
        tree) but structural removal still works."""
        boxes = [Box(bytes([i])) for i in range(16)]
        tree = make_rb(boxes)
        boxes[5].key = b"\xff\xff"
        tree.remove(boxes[5])
        tree.check_invariants()
        assert len(tree) == 15

    def test_compare_hook_called(self):
        count = 0

        def hook():
            nonlocal count
            count += 1

        tree = RedBlackTree(key_of=lambda b: b.key, on_compare=hook)
        tree.insert(Box(b"a"))
        tree.insert(Box(b"b"))
        tree.search(b"b")
        assert count > 0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=8), unique=True, min_size=1, max_size=80))
def test_rb_property_insert_search_remove(keys):
    boxes = [Box(key) for key in keys]
    tree = make_rb(boxes)
    tree.check_invariants()
    for box in boxes:
        assert tree.search(box.key) is box
    for box in boxes[::2]:
        tree.remove(box)
        tree.check_invariants()
    for box in boxes[::2]:
        assert tree.search(box.key) is None
    for box in boxes[1::2]:
        assert tree.search(box.key) is box


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=8), unique=True, min_size=1, max_size=80),
    st.randoms(use_true_random=False),
)
def test_rb_property_random_removal_order(keys, rng):
    boxes = [Box(key) for key in keys]
    tree = make_rb(boxes)
    order = list(boxes)
    rng.shuffle(order)
    for box in order:
        tree.remove(box)
        tree.check_invariants()
    assert len(tree) == 0


class TestAvlBasics:
    def test_insert_search(self):
        tree = AvlTree()
        tree.insert(b"k", "v")
        assert tree.search(b"k") == "v"
        assert tree.search(b"x") is None
        assert b"k" in tree

    def test_duplicate_key_rejected(self):
        tree = AvlTree()
        tree.insert(b"k", 1)
        with pytest.raises(ValueError):
            tree.insert(b"k", 2)

    def test_remove(self):
        tree = AvlTree()
        for i in range(30):
            tree.insert(bytes([i]), i)
        assert tree.remove(bytes([7])) == 7
        assert tree.search(bytes([7])) is None
        assert len(tree) == 29
        tree.check_invariants()

    def test_remove_missing_raises(self):
        tree = AvlTree()
        with pytest.raises(KeyError):
            tree.remove(b"x")

    def test_items_sorted(self):
        tree = AvlTree()
        for key in [b"c", b"a", b"b"]:
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == [b"a", b"b", b"c"]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=8), unique=True, min_size=1, max_size=100))
def test_avl_property_balanced(keys):
    tree = AvlTree()
    for key in keys:
        tree.insert(key, key)
    tree.check_invariants()
    assert [k for k, _ in tree.items()] == sorted(keys)
    for key in keys[::3]:
        tree.remove(key)
        tree.check_invariants()
    remaining = sorted(set(keys) - set(keys[::3]))
    assert [k for k, _ in tree.items()] == remaining
