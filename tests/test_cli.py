"""Tests for the command-line interface (incl. the runner subcommand)."""

from __future__ import annotations

import json

import pytest

from repro.attacks import ALL_ATTACKS
from repro.cli import ATTACKS_BY_NAME, build_parser, main
from repro.fusion.registry import ENGINE_SPECS
from repro.harness.experiments import EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.name == "fig3"
        assert not args.full

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack", "cow-timing"])
        assert args.target is None  # resolved to the attack's own target

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig3", "tag:quick"])
        assert args.selectors == ["fig3", "tag:quick"]
        # jobs/shards stay None at parse time; resolve_jobs() applies
        # REPRO_JOBS/REPRO_SHARDS and the default of 1 afterwards.
        assert args.jobs is None
        assert args.shards is None
        assert args.out == "results/run"
        assert not args.select_all

    def test_run_flags(self):
        args = build_parser().parse_args(
            ["run", "--all", "--jobs", "4", "--timeout", "30", "--seed", "7"]
        )
        assert args.select_all and args.jobs == 4
        assert args.timeout == 30.0 and args.seed == 7

    def test_every_attack_declares_env_spec(self):
        # The env defaults live on the attack classes now (single copy).
        for attack in ALL_ATTACKS:
            assert isinstance(attack.env_defaults, dict)
            assert attack.default_target in ENGINE_SPECS


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "cow-timing" in out
        assert "vusion" in out

    def test_attack_success_output(self, capsys):
        assert main(["attack", "cow-timing", "--target", "ksm"]) == 0
        out = capsys.readouterr().out
        assert "SUCCEEDED" in out

    def test_attack_defeated_output(self, capsys):
        assert main(["attack", "cow-timing", "--target", "vusion"]) == 0
        out = capsys.readouterr().out
        assert "defeated" in out

    def test_attack_default_target_resolves(self, capsys):
        # page-color's published insecure target is WPF, not KSM.
        assert main(["attack", "page-color"]) == 0
        assert "vs wpf" in capsys.readouterr().out

    def test_experiment_runs_and_checks(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "reuse" in out
        assert "PASS" in out

    def test_experiment_seed_flag(self, capsys):
        pytest.importorskip(
            "scipy.stats",
            reason="the ra experiment runs a KS test",
            exc_type=ImportError,
        )
        assert main(["experiment", "ra", "--seed", "7"]) == 0
        assert "KS p-value" in capsys.readouterr().out


class TestRunCommand:
    def test_run_single_experiment_with_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["run", "fig3", "--jobs", "2", "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "runner summary" in out
        assert "experiment:fig3" in out
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["ok"] is True
        assert manifest["jobs"] == 2
        task_file = out_dir / manifest["tasks"][0]["file"]
        document = json.loads(task_file.read_text())
        assert document["result"]["checks_pass"] is True
        assert document["result"]["type"] == "experiment"

    def test_run_attack_selector(self, tmp_path, capsys):
        assert main(["run", "attack:cow-timing@vusion", "--serial",
                     "--out", str(tmp_path / "a")]) == 0
        out = capsys.readouterr().out
        assert "attack:cow-timing@vusion" in out

    def test_run_unknown_selector_errors(self, tmp_path, capsys):
        assert main(["run", "not-a-thing", "--out", str(tmp_path)]) == 2
        assert "unknown selector" in capsys.readouterr().err

    def test_run_no_selector_errors(self, capsys):
        assert main(["run", "--no-artifacts"]) == 2
        assert "no selectors" in capsys.readouterr().err


class TestRemovedShims:
    """The PR 2 deprecation shims are gone after their cycle."""

    # The old spellings are written via getattr so this file stays
    # clean under simlint's API001 (which bans the bare names).
    def test_experiment_registry_removed(self):
        import repro.harness.experiments as experiments

        assert not hasattr(experiments, "EXPERIMENT" + "_REGISTRY")

    def test_engine_factories_alias_removed(self):
        import repro.attacks.base as attacks_base

        assert not hasattr(attacks_base, "ENGINE" + "_FACTORIES")

    def test_typed_replacements_cover_engines(self):
        from repro.fusion.registry import attack_engine_factories

        factories = attack_engine_factories()
        assert set(factories) == set(ENGINE_SPECS)
        assert type(factories["ksm"]()).__name__ == "Ksm"

    def test_attacks_by_name_covers_all(self):
        assert set(ATTACKS_BY_NAME) == {a.name for a in ALL_ATTACKS}
