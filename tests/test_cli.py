"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import ATTACK_ENV_DEFAULTS, ATTACKS_BY_NAME, build_parser, main
from repro.harness.experiments import EXPERIMENT_REGISTRY


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig3"])
        assert args.name == "fig3"
        assert not args.full

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack", "cow-timing"])
        assert args.target == "ksm"

    def test_every_attack_has_env_defaults_or_empty(self):
        for name in ATTACKS_BY_NAME:
            assert isinstance(ATTACK_ENV_DEFAULTS.get(name, {}), dict)


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENT_REGISTRY:
            assert name in out
        assert "cow-timing" in out
        assert "vusion" in out

    def test_attack_success_output(self, capsys):
        assert main(["attack", "cow-timing", "--target", "ksm"]) == 0
        out = capsys.readouterr().out
        assert "SUCCEEDED" in out

    def test_attack_defeated_output(self, capsys):
        assert main(["attack", "cow-timing", "--target", "vusion"]) == 0
        out = capsys.readouterr().out
        assert "defeated" in out

    def test_experiment_runs_and_checks(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "reuse" in out
        assert "PASS" in out

    def test_experiment_seed_flag(self, capsys):
        assert main(["experiment", "ra", "--seed", "7"]) == 0
        assert "KS p-value" in capsys.readouterr().out
