"""Unit tests for VMAs and the per-process address space."""

from __future__ import annotations

import pytest

from repro.errors import MappingError, SegmentationFault
from repro.mmu.address_space import AddressSpace, MMAP_BASE
from repro.params import HUGE_PAGE_SIZE, PAGE_SIZE


class TestMmap:
    def test_first_region_at_base(self):
        space = AddressSpace()
        vma = space.mmap(4)
        assert vma.start == MMAP_BASE
        assert vma.num_pages == 4

    def test_regions_never_overlap(self):
        space = AddressSpace()
        regions = [space.mmap(100) for _ in range(10)]
        for first, second in zip(regions, regions[1:]):
            assert first.end <= second.start

    def test_regions_2mib_aligned(self):
        space = AddressSpace()
        for _ in range(5):
            vma = space.mmap(7)
            assert vma.start % HUGE_PAGE_SIZE == 0

    def test_zero_pages_rejected(self):
        space = AddressSpace()
        with pytest.raises(MappingError):
            space.mmap(0)

    def test_vma_metadata(self):
        space = AddressSpace()
        vma = space.mmap(2, name="x", mergeable=True, file_key="f",
                         thp_allowed=False)
        assert vma.name == "x"
        assert vma.mergeable
        assert vma.file_key == "f"
        assert not vma.thp_allowed


class TestLookup:
    def test_vma_at_inside(self):
        space = AddressSpace()
        vma = space.mmap(3)
        assert space.vma_at(vma.start + PAGE_SIZE) is vma

    def test_vma_at_outside_raises(self):
        space = AddressSpace()
        space.mmap(1)
        with pytest.raises(SegmentationFault):
            space.vma_at(0x10)

    def test_find_vma_none(self):
        space = AddressSpace()
        assert space.find_vma(0x123) is None

    def test_end_is_exclusive(self):
        space = AddressSpace()
        vma = space.mmap(1)
        assert vma.contains(vma.end - 1)
        assert not vma.contains(vma.end)


class TestMergeable:
    def test_madvise_toggle(self):
        space = AddressSpace()
        vma = space.mmap(1)
        assert space.mergeable_vmas() == []
        space.madvise_mergeable(vma)
        assert space.mergeable_vmas() == [vma]
        space.madvise_mergeable(vma, False)
        assert space.mergeable_vmas() == []

    def test_iter_pages_covers_all(self):
        space = AddressSpace()
        first = space.mmap(2)
        second = space.mmap(3, mergeable=True)
        pages = list(space.iter_pages())
        assert len(pages) == 5
        assert pages[0] == (first.start, first)
        assert pages[-1] == (second.end - PAGE_SIZE, second)

    def test_remove_vma(self):
        space = AddressSpace()
        vma = space.mmap(1)
        space.remove_vma(vma)
        assert space.find_vma(vma.start) is None
