"""End-to-end tests for the ``repro lint`` CLI and the reporters.

Pins the exit-code matrix (clean / findings / --strict promotion /
--check-annotations contradiction), the degenerate inputs (empty tree,
undecodable file), the three output formats — including a SARIF 2.1.0
golden file — and the ``--fix`` flow through the CLI.
"""

from __future__ import annotations

import json
import os
import pathlib
import textwrap

from repro.check import lint_project
from repro.check.cli import main
from repro.check.engine import LintResult
from repro.check.reporting import findings_to_sarif

SARIF_GOLDEN = (
    pathlib.Path(__file__).parent / "data" / "simlint_sarif.golden.json"
)

CLEAN_SOURCE = "VALUE = 1\n"

DIRTY_SOURCE = textwrap.dedent("""\
    def derive(name):
        return hash(name)
""")

CONTRADICTED_SOURCE = textwrap.dedent("""\
    from repro.annotations import escapes_frame

    @escapes_frame
    def noop():
        pass
""")


def write_tree(root: pathlib.Path, files: dict[str, str]) -> None:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")


# ----------------------------------------------------------------------
# Exit-code matrix
# ----------------------------------------------------------------------
class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/mod.py": CLEAN_SOURCE})
        assert main([str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/mod.py": DIRTY_SOURCE})
        assert main([str(tmp_path)]) == 1
        assert "DET004" in capsys.readouterr().out

    def test_baseline_accepts_findings(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/mod.py": DIRTY_SOURCE})
        baseline = tmp_path / "baseline.json"
        assert main(
            [str(tmp_path), "--write-baseline", str(baseline)]
        ) == 0
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_strict_promotes_baselined_findings(self, tmp_path):
        write_tree(tmp_path, {"pkg/mod.py": DIRTY_SOURCE})
        baseline = tmp_path / "baseline.json"
        main([str(tmp_path), "--write-baseline", str(baseline)])
        assert main(
            [str(tmp_path), "--baseline", str(baseline), "--strict"]
        ) == 1

    def test_missing_baseline_warns_but_runs(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/mod.py": CLEAN_SOURCE})
        missing = tmp_path / "nope.json"
        assert main([str(tmp_path), "--baseline", str(missing)]) == 0
        assert "not found" in capsys.readouterr().out

    def test_check_annotations_contradiction_exits_one(
        self, tmp_path, capsys
    ):
        write_tree(tmp_path, {"pkg/mod.py": CONTRADICTED_SOURCE})
        assert main([str(tmp_path), "--check-annotations"]) == 1
        assert "contradicted" in capsys.readouterr().out

    def test_check_annotations_without_annotations_exits_zero(
        self, tmp_path, capsys
    ):
        write_tree(tmp_path, {"pkg/mod.py": CLEAN_SOURCE})
        assert main([str(tmp_path), "--check-annotations"]) == 0
        assert "no checked annotations" in capsys.readouterr().out

    def test_list_rules_exits_zero(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET004", "FLOW001", "FLOW005", "RACE001"):
            assert rule_id in out
        assert "race" in out  # the engine tag is printed


# ----------------------------------------------------------------------
# Degenerate inputs
# ----------------------------------------------------------------------
class TestDegenerateInputs:
    def test_empty_tree_is_clean(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert main([str(tmp_path / "empty")]) == 0
        assert "clean: 0 file(s)" in capsys.readouterr().out

    def test_undecodable_file_is_an_error_not_a_crash(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.py"
        bad.write_bytes(b"\xff\xfe not utf-8 \xba\xad")
        write_tree(tmp_path, {"good.py": CLEAN_SOURCE})
        assert main([str(tmp_path)]) == 1
        assert "cannot lint" in capsys.readouterr().out

    def test_syntax_error_is_an_error_not_a_crash(self, tmp_path, capsys):
        write_tree(tmp_path, {"broken.py": "def oops(:\n"})
        assert main([str(tmp_path)]) == 1
        assert "cannot lint" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Output formats
# ----------------------------------------------------------------------
class TestFormats:
    def test_json_format_is_parseable(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/mod.py": DIRTY_SOURCE})
        main([str(tmp_path), "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert document["clean"] is False
        assert document["counts"] == {"DET004": 1}

    def test_sarif_format_is_parseable(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/mod.py": DIRTY_SOURCE})
        main([str(tmp_path), "--format", "sarif"])
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "simlint"
        (result,) = run["results"]
        assert result["ruleId"] == "DET004"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2

    def test_sarif_rules_carry_engine_property(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/mod.py": CLEAN_SOURCE})
        main([str(tmp_path), "--format", "sarif"])
        document = json.loads(capsys.readouterr().out)
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        by_id = {rule["id"]: rule for rule in rules}
        assert by_id["RACE001"]["properties"]["engine"] == "race"
        assert by_id["FLOW001"]["properties"]["engine"] == "flow"
        assert by_id["DET004"]["properties"]["engine"] == "ast"
        # rules are sorted for byte-stable output
        assert [rule["id"] for rule in rules] == sorted(by_id)

    def test_sarif_omits_baselined_findings(self):
        result = lint_project({"src/repro/core/x.py": DIRTY_SOURCE})
        result.baselined = result.findings
        result.findings = []
        document = json.loads(findings_to_sarif(result))
        assert document["runs"][0]["results"] == []


class TestSarifGolden:
    def make_result(self) -> LintResult:
        findings = lint_project({
            "src/repro/runner/fixture.py": textwrap.dedent("""\
                import time

                def execute_task(spec, seed):
                    bad_seed = hash(spec.name)
                    return {"seed": bad_seed, "wall": time.time()}
            """),
        }).findings
        return LintResult(findings=findings, files_scanned=1)

    def test_golden_document(self):
        document = findings_to_sarif(self.make_result())
        if os.environ.get("REPRO_REGEN_GOLDEN") == "1":  # pragma: no cover
            SARIF_GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            SARIF_GOLDEN.write_text(document, encoding="utf-8")
        assert SARIF_GOLDEN.exists(), (
            "golden file missing; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        assert document == SARIF_GOLDEN.read_text(encoding="utf-8"), (
            "SARIF report changed: if intentional, regenerate with "
            "REPRO_REGEN_GOLDEN=1"
        )


# ----------------------------------------------------------------------
# --fix through the CLI
# ----------------------------------------------------------------------
class TestFixFlag:
    def test_fix_rewrites_then_lints_clean(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/mod.py": DIRTY_SOURCE})
        assert main([str(tmp_path), "--fix"]) == 0
        out = capsys.readouterr().out
        assert "--fix rewrote 1 file(s)" in out
        fixed = (tmp_path / "pkg" / "mod.py").read_text(encoding="utf-8")
        assert "zlib.crc32" in fixed
        assert "import zlib" in fixed

    def test_fix_is_idempotent_through_the_cli(self, tmp_path, capsys):
        write_tree(tmp_path, {"pkg/mod.py": DIRTY_SOURCE})
        main([str(tmp_path), "--fix"])
        after_first = (tmp_path / "pkg" / "mod.py").read_text()
        capsys.readouterr()
        assert main([str(tmp_path), "--fix"]) == 0
        assert "rewrote" not in capsys.readouterr().out
        assert (tmp_path / "pkg" / "mod.py").read_text() == after_first

    def test_fix_respects_rule_selection(self, tmp_path):
        write_tree(tmp_path, {"pkg/mod.py": DIRTY_SOURCE})
        # Selecting a non-fixable rule: --fix has nothing to do and the
        # file is untouched.
        main([str(tmp_path), "--fix", "--rule", "DET001"])
        assert (tmp_path / "pkg" / "mod.py").read_text() == DIRTY_SOURCE
