"""Differential suite for the cross-shard content-id exchange.

The exchange resolver (:mod:`repro.mem.shard`) is the piece that makes
sharded execution deterministic: canonical holders elected by minimal
``(shard, pfn)``, intents emitted in sorted order, stale tables dropped
before resolution.  This suite proves it three ways:

* unit coverage of the topology math and table canonicalization;
* hypothesis-randomized cross-shard duplicate layouts, where the
  resolver must agree with :func:`~repro.mem.shard.verify_exchange`'s
  structurally different reference derivation under any permutation of
  the input tables;
* a seeded-mutant meta-test: each defect the ``_mutant`` hook plants
  (dropped intent, inverted tiebreak, stale admission) must be caught
  by the verifier — so the audit demonstrably has teeth;
* the five fusion engines running a sharded scenario end to end
  through the serial reference executor, byte-identical across runs,
  with every exported table canonical.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.shardfleet import run_sharded_serial
from repro.harness.spec import FleetSpec, ScenarioSpec, ScheduleSpec
from repro.harness.scenario import SystemConfig
from repro.mem.shard import (
    ExchangeOutcome,
    MergeIntent,
    RemoteShareLedger,
    ShardContentTable,
    ShardExchangeError,
    ShardMap,
    resolve_exchange,
    verify_exchange,
)
from repro.params import MS, SECOND
from repro.runner import sanitize


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------
class TestShardMap:
    def test_frames_partition_evenly(self):
        shard_map = ShardMap(shards=4, frames=4096)
        assert shard_map.frames_per_shard == 1024
        assert shard_map.shard_of_frame(0) == 0
        assert shard_map.shard_of_frame(1023) == 0
        assert shard_map.shard_of_frame(1024) == 1
        assert shard_map.shard_of_frame(4095) == 3

    def test_global_local_round_trip(self):
        shard_map = ShardMap(shards=4, frames=4096)
        for pfn in (0, 1, 1023, 1024, 2049, 4095):
            shard, local = shard_map.local_pfn(pfn)
            assert shard_map.global_pfn(shard, local) == pfn

    def test_vms_deal_round_robin(self):
        shard_map = ShardMap(shards=3, frames=3072)
        assert [shard_map.shard_of_vm(i) for i in range(6)] == [
            0, 1, 2, 0, 1, 2]

    def test_rejects_uneven_split(self):
        with pytest.raises(ValueError, match="divide evenly"):
            ShardMap(shards=3, frames=4096)

    def test_rejects_out_of_range(self):
        shard_map = ShardMap(shards=2, frames=2048)
        with pytest.raises(ValueError, match="outside machine"):
            shard_map.shard_of_frame(2048)
        with pytest.raises(ValueError, match="outside shard range"):
            shard_map.global_pfn(0, 1024)
        with pytest.raises(ValueError, match="outside"):
            shard_map.global_pfn(2, 0)


class TestTableBuild:
    def test_canonical_regardless_of_row_order(self):
        rows = [(7, 30, 1), (3, 10, 2), (7, 20, 3)]
        for permuted in (rows, rows[::-1], [rows[2], rows[0], rows[1]]):
            table = ShardContentTable.build(
                shard=1, round_no=0, generation=5, rows=permuted)
            assert [(e.digest, e.pfn, e.holders) for e in table.entries] \
                == [(3, 10, 2), (7, 20, 4)]

    def test_empty_rows(self):
        table = ShardContentTable.build(shard=0, round_no=2, generation=1,
                                        rows=[])
        assert table.entries == ()


# ---------------------------------------------------------------------------
# Resolver semantics
# ---------------------------------------------------------------------------
def table(shard, rows, round_no=0, generation=1):
    return ShardContentTable.build(shard=shard, round_no=round_no,
                                   generation=generation, rows=rows)


class TestResolver:
    def test_min_shard_pfn_wins(self):
        tables = [
            table(0, [(9, 40, 2)]),
            table(1, [(9, 5, 1)]),
            table(2, [(9, 3, 4)]),
        ]
        outcome = resolve_exchange(tables, round_no=0)
        assert [i.order_key for i in outcome.intents] == [
            (0, 40, 1, 5), (0, 40, 2, 3)]
        assert outcome.remote_saved_frames == 2
        assert outcome.exchanged_cids == 3

    def test_single_holder_emits_nothing(self):
        outcome = resolve_exchange([table(0, [(1, 0, 1)]),
                                    table(1, [(2, 0, 1)])], round_no=0)
        assert outcome.intents == ()
        assert outcome.remote_saved_frames == 0

    def test_permutation_invariant(self):
        tables = [table(s, [(d, s * 10 + d, 1) for d in range(4)])
                  for s in range(3)]
        baseline = resolve_exchange(tables, round_no=1)
        assert resolve_exchange(tables[::-1], round_no=1) == baseline
        assert resolve_exchange([tables[1], tables[2], tables[0]],
                                round_no=1) == baseline

    def test_stale_tables_dropped_before_resolution(self):
        fresh = table(0, [(5, 1, 1)], generation=10)
        stale = table(1, [(5, 2, 1)], generation=3)
        outcome = resolve_exchange([fresh, stale], round_no=0,
                                   min_generations={1: 7})
        assert outcome.intents == ()
        assert outcome.stale_entries_dropped == 1
        assert outcome.exchanged_cids == 1

    def test_duplicate_posts_keep_freshest(self):
        old = table(0, [(5, 9, 1)], generation=2)
        new = table(0, [(5, 4, 1)], generation=8)
        other = table(1, [(5, 6, 1)], generation=8)
        outcome = resolve_exchange([old, new, other], round_no=0)
        assert outcome.stale_entries_dropped == 1
        assert outcome.intents[0].source_pfn == 4


class TestLedger:
    def test_floors_advance_and_block_stale_reposts(self):
        ledger = RemoteShareLedger()
        ledger.resolve_round([table(0, [(5, 1, 1)], generation=10),
                              table(1, [(5, 2, 1)], generation=10)],
                             round_no=0)
        assert ledger.generations() == {0: 10, 1: 10}
        assert ledger.owner(5) == (0, 1)
        # A crashed-and-retried worker re-posting an older export must
        # be dropped as stale, never rolling the exchange backwards.
        outcome = ledger.resolve_round(
            [table(0, [(5, 7, 1)], generation=4, round_no=1),
             table(1, [(5, 2, 1)], generation=12, round_no=1)],
            round_no=1)
        assert outcome.stale_entries_dropped == 1
        assert outcome.intents == ()
        assert ledger.generations() == {0: 10, 1: 12}


# ---------------------------------------------------------------------------
# Hypothesis differential: resolver vs the independent reference
# ---------------------------------------------------------------------------
layouts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),      # shard
        st.integers(min_value=0, max_value=9),      # digest
        st.integers(min_value=0, max_value=63),     # pfn
        st.integers(min_value=1, max_value=4),      # holders
    ),
    min_size=0, max_size=40,
)
generations = st.dictionaries(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=6),
    max_size=6,
)


def tables_from_layout(layout):
    by_shard: dict[int, list] = {}
    for shard, digest, pfn, holders in layout:
        by_shard.setdefault(shard, []).append((digest, pfn, holders))
    return [table(shard, rows, generation=4)
            for shard, rows in sorted(by_shard.items())]


class TestDifferential:
    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(layout=layouts, floors=generations, seed=st.randoms())
    def test_resolver_agrees_with_reference(self, layout, floors, seed):
        tables_ = tables_from_layout(layout)
        outcome = resolve_exchange(tables_, round_no=0,
                                   min_generations=floors)
        # The verifier re-derives everything per-pair; any divergence
        # raises.  Shuffling the fabric's delivery order must not
        # change a single field either.
        verify_exchange(tables_, outcome, min_generations=floors)
        shuffled = list(tables_)
        seed.shuffle(shuffled)
        assert resolve_exchange(shuffled, round_no=0,
                                min_generations=floors) == outcome

    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(layout=layouts)
    def test_canonical_holder_is_minimal(self, layout):
        tables_ = tables_from_layout(layout)
        outcome = resolve_exchange(tables_, round_no=0)
        holders_by_digest: dict[int, list] = {}
        for t in tables_:
            for entry in t.entries:
                holders_by_digest.setdefault(entry.digest, []).append(
                    (t.shard, entry.pfn))
        for intent in outcome.intents:
            assert (intent.source_shard, intent.source_pfn) \
                == min(holders_by_digest[intent.digest])
        assert list(outcome.intents) == sorted(
            outcome.intents, key=lambda i: i.order_key)


# ---------------------------------------------------------------------------
# Seeded mutants: the audit must have teeth
# ---------------------------------------------------------------------------
MUTANT_TABLES = [
    table(0, [(3, 8, 1), (5, 2, 2)], generation=9),
    table(1, [(3, 1, 1), (5, 6, 1)], generation=9),
    table(2, [(5, 0, 1)], generation=1),  # stale under a floor of 5
]
MUTANT_FLOORS = {2: 5}


class TestSeededMutants:
    def test_layout_is_sensitive(self):
        # Sanity: the pristine resolver passes on this layout and
        # produces enough structure for every mutant to matter.
        outcome = resolve_exchange(MUTANT_TABLES, round_no=0,
                                   min_generations=MUTANT_FLOORS)
        verify_exchange(MUTANT_TABLES, outcome,
                        min_generations=MUTANT_FLOORS)
        assert len(outcome.intents) >= 2
        assert outcome.stale_entries_dropped == 1

    @pytest.mark.parametrize("mutant", ["drop-intent", "tiebreak", "stale"])
    def test_mutant_is_caught(self, mutant):
        outcome = resolve_exchange(MUTANT_TABLES, round_no=0,
                                   min_generations=MUTANT_FLOORS,
                                   _mutant=mutant)
        with pytest.raises(ShardExchangeError):
            verify_exchange(MUTANT_TABLES, outcome,
                            min_generations=MUTANT_FLOORS)

    def test_mutants_change_the_outcome(self):
        # Each seeded defect really perturbs the exchange (no vacuous
        # catches): intents shrink, the tiebreak flips, stale admits.
        pristine = resolve_exchange(MUTANT_TABLES, round_no=0,
                                    min_generations=MUTANT_FLOORS)
        for mutant in ("drop-intent", "tiebreak", "stale"):
            mutated = resolve_exchange(MUTANT_TABLES, round_no=0,
                                       min_generations=MUTANT_FLOORS,
                                       _mutant=mutant)
            assert mutated != pristine, mutant


# ---------------------------------------------------------------------------
# All five engines, sharded, against the serial reference
# ---------------------------------------------------------------------------
ENGINE_CONFIGS = {
    "ksm": SystemConfig(label="KSM", engine="ksm"),
    "wpf": SystemConfig(label="WPF", engine="wpf", wpf_interval=100 * MS),
    "zeropage": SystemConfig(label="ZP", engine="zeropage"),
    "memory-combining": SystemConfig(label="MC", engine="memory-combining"),
    "vusion": SystemConfig(label="VUsion", engine="vusion"),
}


def sharded_spec(engine: str, shards: int = 2) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"xshard-{engine}",
        system=ENGINE_CONFIGS[engine],
        fleet=FleetSpec(vms=4, image_families=2, pages_per_vm=64,
                        max_resident=2, lifetime_ns=SECOND,
                        arrival_interval_ns=125 * MS),
        schedule=ScheduleSpec(settle_ns=SECOND),
        frames=2048 * shards,
        seed=1017,
        shards=shards,
    )


@pytest.mark.parametrize("engine", sorted(ENGINE_CONFIGS))
class TestEngineDifferential:
    def test_sharded_run_is_reproducible(self, engine):
        spec = sharded_spec(engine)
        first = run_sharded_serial(spec)
        second = run_sharded_serial(spec)
        assert json.dumps(sanitize(first.to_payload()), sort_keys=True) \
            == json.dumps(sanitize(second.to_payload()), sort_keys=True)
        exchange = first.totals["exchange"]
        assert exchange["rounds"] >= 1
        assert first.totals["shards"] == 2
        assert len(first.totals["per_shard"]) == 2
        assert sum(entry["booted_vms"]
                   for entry in first.totals["per_shard"]) == 4

    def test_exports_are_canonical(self, engine):
        # Every table an engine ships must already be in canonical
        # (digest-sorted, duplicate-free) form with pfns in-range.
        from repro.harness.shardfleet import run_one_shard

        spec = sharded_spec(engine)
        result = run_one_shard(spec, 0)
        for table_ in result.tables:
            digests = [entry.digest for entry in table_.entries]
            assert digests == sorted(digests)
            assert len(set(digests)) == len(digests)
            for entry in table_.entries:
                assert 0 <= entry.pfn < spec.frames // spec.shards
                assert entry.holders >= 1
