"""Unit and property tests for the buddy allocator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidFrameError, OutOfMemoryError
from repro.mem.buddy import BuddyAllocator, MAX_ORDER


class TestBasicAllocation:
    def test_alloc_free_roundtrip(self):
        buddy = BuddyAllocator(0, 1024)
        pfn = buddy.alloc()
        assert 0 <= pfn < 1024
        assert not buddy.is_free(pfn)
        buddy.free(pfn)
        assert buddy.is_free(pfn)

    def test_total_free_frames(self):
        buddy = BuddyAllocator(16, 1000)
        assert buddy.free_frames() == 1000

    def test_lifo_reuse(self):
        """The most recently freed frame is handed back first — the
        predictable-reuse property Flip Feng Shui relies on."""
        buddy = BuddyAllocator(0, 1024)
        pfn = buddy.alloc()
        other = buddy.alloc()
        buddy.free(pfn)
        assert buddy.alloc() == pfn
        buddy.free(other)

    def test_order_allocation_aligned(self):
        buddy = BuddyAllocator(0, 1024)
        for order in range(MAX_ORDER + 1):
            pfn = buddy.alloc(order)
            assert pfn % (1 << order) == 0
            buddy.free(pfn, order)

    def test_exhaustion_raises(self):
        buddy = BuddyAllocator(0, 4)
        frames = [buddy.alloc() for _ in range(4)]
        with pytest.raises(OutOfMemoryError):
            buddy.alloc()
        for pfn in frames:
            buddy.free(pfn)

    def test_huge_block_exhaustion(self):
        buddy = BuddyAllocator(0, 512)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc(10)  # only 512 frames available

    def test_unaligned_region(self):
        buddy = BuddyAllocator(5, 100)
        seen = set()
        for _ in range(100):
            pfn = buddy.alloc()
            assert 5 <= pfn < 105
            assert pfn not in seen
            seen.add(pfn)
        with pytest.raises(OutOfMemoryError):
            buddy.alloc()


class TestCoalescing:
    def test_split_and_coalesce(self):
        buddy = BuddyAllocator(0, 1024)
        frames = [buddy.alloc() for _ in range(1024)]
        assert buddy.free_frames() == 0
        for pfn in frames:
            buddy.free(pfn)
        assert buddy.free_frames() == 1024
        # Everything must have coalesced back into order-10 blocks.
        snapshot = buddy.free_list_snapshot()
        assert len(snapshot[MAX_ORDER]) == 1
        assert all(not snapshot[order] for order in range(MAX_ORDER))

    def test_huge_block_freed_as_singles_coalesces(self):
        """An order-9 allocation may be freed frame-by-frame (THP split)."""
        buddy = BuddyAllocator(0, 1024)
        head = buddy.alloc(9)
        for pfn in range(head, head + 512):
            buddy.free(pfn)
        assert buddy.free_frames() == 1024
        assert buddy.alloc(9) is not None

    def test_no_coalesce_outside_region(self):
        buddy = BuddyAllocator(1, 3)  # frames 1,2,3
        a = buddy.alloc()
        b = buddy.alloc()
        c = buddy.alloc()
        for pfn in (a, b, c):
            buddy.free(pfn)
        assert buddy.free_frames() == 3


class TestErrors:
    def test_double_free_detected(self):
        buddy = BuddyAllocator(0, 64)
        pfn = buddy.alloc()
        buddy.free(pfn)
        with pytest.raises(InvalidFrameError):
            buddy.free(pfn)

    def test_free_never_allocated(self):
        buddy = BuddyAllocator(0, 64)
        with pytest.raises(InvalidFrameError):
            buddy.free(3)

    def test_free_outside_region(self):
        buddy = BuddyAllocator(0, 64)
        with pytest.raises(InvalidFrameError):
            buddy.free(64)

    def test_misaligned_order_free(self):
        buddy = BuddyAllocator(0, 64)
        with pytest.raises(InvalidFrameError):
            buddy.free(1, 1)

    def test_partial_overlap_free_detected(self):
        buddy = BuddyAllocator(0, 64)
        pfn = buddy.alloc(1)  # frames pfn, pfn+1
        buddy.free(pfn)  # free only the first as order-0
        with pytest.raises(InvalidFrameError):
            buddy.free(pfn, 1)  # order-1 free overlapping the free half
        buddy.free(pfn + 1)


class TestAllocSpecific:
    def test_claims_exact_frame(self):
        buddy = BuddyAllocator(0, 1024)
        assert buddy.alloc_specific(777) == 777
        assert not buddy.is_free(777)
        assert buddy.free_frames() == 1023

    def test_rejects_taken_frame(self):
        buddy = BuddyAllocator(0, 64)
        pfn = buddy.alloc()
        with pytest.raises(InvalidFrameError):
            buddy.alloc_specific(pfn)

    def test_descending_iteration_order(self):
        buddy = BuddyAllocator(0, 256)
        top = list(buddy.iter_free_frames_desc())[:5]
        assert top == [255, 254, 253, 252, 251]

    def test_linear_claims_from_top(self):
        buddy = BuddyAllocator(0, 256)
        claimed = []
        for pfn in list(buddy.iter_free_frames_desc())[:10]:
            claimed.append(buddy.alloc_specific(pfn))
        assert claimed == list(range(255, 245, -1))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(0, 3)),
        max_size=120,
    )
)
def test_buddy_property_random_ops(ops):
    """Random alloc/free sequences keep block accounting consistent."""
    buddy = BuddyAllocator(0, 512)
    live: list[tuple[int, int]] = []
    total = 512
    for action, order in ops:
        if action == "alloc":
            try:
                pfn = buddy.alloc(order)
            except OutOfMemoryError:
                continue
            live.append((pfn, order))
        elif live:
            index = order % len(live)
            pfn, block_order = live.pop(index)
            buddy.free(pfn, block_order)
        allocated = sum(1 << o for _, o in live)
        assert buddy.free_frames() == total - allocated
    # No two live blocks overlap.
    covered: set[int] = set()
    for pfn, order in live:
        block = set(range(pfn, pfn + (1 << order)))
        assert not block & covered
        covered |= block
    for pfn, order in live:
        buddy.free(pfn, order)
    assert buddy.free_frames() == total
