"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.kernel.kernel import Kernel
from repro.mem.content import tagged_content
from repro.params import FusionConfig, MachineSpec, MS

try:
    from hypothesis import HealthCheck, settings

    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("dev", deadline=None, max_examples=25)
    settings.register_profile("thorough", deadline=None, max_examples=300)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis suites just skip
    pass


def small_spec(frames: int = 4096, seed: int = 1017) -> MachineSpec:
    return MachineSpec(total_frames=frames, seed=seed)


def fast_fusion(pages: int = 64, interval_ms: int = 20) -> FusionConfig:
    return FusionConfig(pages_per_scan=pages, scan_interval=interval_ms * MS)


def dup(tag: object, index: int = 0) -> bytes:
    """Deterministic duplicate-able page content."""
    return tagged_content("test-dup", tag, index)


def audit_if_sanitized(kern: Kernel) -> None:
    """End-of-test frame audit, active only under ``REPRO_SANITIZE=1``.

    Raises ``AccountingError`` on refcount/rmap/pin or merge-charge
    inconsistencies, turning silent leaks into test failures.
    """
    if kern.sanitizer is not None:
        kern.sanitizer.assert_clean(kern.fusion)


@pytest.fixture
def kernel() -> Kernel:
    """A small bare kernel (no fusion engine)."""
    kern = Kernel(small_spec())
    yield kern
    audit_if_sanitized(kern)


@pytest.fixture
def kernel_thp() -> Kernel:
    """A kernel with THP-on-fault enabled."""
    kern = Kernel(small_spec(frames=16384), thp_fault_enabled=True)
    yield kern
    audit_if_sanitized(kern)
