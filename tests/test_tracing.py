"""Tests for the kernel tracepoint facility."""

from __future__ import annotations

from repro.core.vusion import Vusion
from repro.fusion.ksm import Ksm
from repro.kernel.kernel import Kernel
from repro.kernel.tracing import TraceEvent, Tracepoints
from repro.params import MS, SECOND, VusionConfig

from tests.conftest import dup, fast_fusion, small_spec


class TestTracepoints:
    def test_off_by_default(self):
        trace = Tracepoints()
        trace.emit(0, "x", a=1)
        assert trace.events() == []
        assert trace.counts() == {}

    def test_record_and_query(self):
        trace = Tracepoints()
        trace.record()
        trace.emit(5, "merge", pfn=7)
        trace.emit(6, "split", vaddr=0x1000)
        assert len(trace.events()) == 2
        assert trace.events("merge")[0].fields["pfn"] == 7
        assert trace.counts()["split"] == 1

    def test_ring_buffer_bounded(self):
        trace = Tracepoints()
        trace.record(capacity=4)
        for index in range(10):
            trace.emit(index, "e", i=index)
        events = trace.events()
        assert len(events) == 4
        assert events[0].fields["i"] == 6

    def test_subscribe(self):
        trace = Tracepoints()
        seen = []
        trace.subscribe("merge", seen.append)
        trace.emit(1, "merge")
        trace.emit(2, "other")
        assert len(seen) == 1
        assert isinstance(seen[0], TraceEvent)


class TestKernelIntegration:
    def test_ksm_merge_events(self):
        kernel = Kernel(small_spec())
        kernel.attach_fusion(Ksm(fast_fusion()))
        kernel.tracepoints.record()
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        va = a.mmap(4, mergeable=True)
        vb = b.mmap(4, mergeable=True)
        for index in range(4):
            a.write_page(va, index, dup("tr", index))
            b.write_page(vb, index, dup("tr", index))
        kernel.idle(2 * SECOND)
        counts = kernel.tracepoints.counts()
        assert counts.get("fusion:promote", 0) == 4
        assert counts.get("fusion:merge", 0) == 4
        assert counts.get("fault:demand", 0) >= 8
        a.write_page(va, 0, b"z")
        assert kernel.tracepoints.counts().get("fusion:unmerge", 0) == 1

    def test_vusion_events(self):
        kernel = Kernel(small_spec())
        kernel.attach_fusion(
            Vusion(VusionConfig(random_pool_frames=64, min_idle_ns=50 * MS),
                   fast_fusion())
        )
        kernel.tracepoints.record()
        a = kernel.create_process("a")
        va = a.mmap(2, mergeable=True)
        a.write_page(va, 0, dup("tv", 0))
        a.write_page(va, 1, dup("tv", 1))
        kernel.idle(2 * SECOND)
        counts = kernel.tracepoints.counts()
        assert counts.get("fusion:fake_merge", 0) >= 2
        assert counts.get("fusion:rerandomize", 0) >= 1
        a.read_page(va, 0)
        assert kernel.tracepoints.counts().get("fusion:coa", 0) == 1

    def test_events_carry_timestamps(self):
        kernel = Kernel(small_spec())
        kernel.attach_fusion(Ksm(fast_fusion()))
        kernel.tracepoints.record()
        a = kernel.create_process("a")
        va = a.mmap(1, mergeable=True)
        a.write_page(va, 0, dup("ts"))
        events = kernel.tracepoints.events("fault:demand")
        assert events and events[0].t_ns >= 0
        assert events[0].fields["pid"] == a.pid
