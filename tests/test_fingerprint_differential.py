"""Differential testing of the frame-fingerprint cache (hypothesis).

The fingerprint engine is an optimisation layered under every fusion
engine, so its correctness contract is differential: for any
interleaving of writes, Rowhammer bit flips, merges, unmerges and scan
activity, a cached digest must always equal the digest of the frame's
*current* content, and the dirty-frame bookkeeping must be exact — no
stale hits (a mutated frame still reporting its old digest) and no
spurious misses (an untouched frame reported dirty).

Two layers are exercised:

* raw :class:`~repro.mem.physmem.PhysicalMemory` operation sequences,
  with the expected dirty set tracked independently by the test;
* full kernels running each fusion engine, where merges/unmerges/
  rerandomisation move pages between frames behind the workload's
  back.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.vusion import Vusion
from repro.fusion.cow_ksm import CopyOnAccessKsm
from repro.fusion.ksm import Ksm
from repro.fusion.memory_combining import MemoryCombining
from repro.fusion.wpf import WindowsPageFusion
from repro.kernel.kernel import Kernel
from repro.mem.content import content_digest, tagged_content
from repro.mem.physmem import PhysicalMemory
from repro.params import (
    FusionConfig,
    MS,
    PAGE_SIZE,
    SECOND,
    VusionConfig,
    WpfConfig,
)

from tests.conftest import small_spec

# ----------------------------------------------------------------------
# Layer 1: raw physical-memory operation sequences
# ----------------------------------------------------------------------

RAW_FRAMES = 24

raw_op = st.one_of(
    st.tuples(
        st.just("write"),
        st.integers(0, RAW_FRAMES - 1),
        st.integers(0, 15),  # content tag
    ),
    st.tuples(
        st.just("copy"),
        st.integers(0, RAW_FRAMES - 1),
        st.integers(0, RAW_FRAMES - 1),
    ),
    st.tuples(
        st.just("corrupt"),
        st.integers(0, RAW_FRAMES - 1),
        st.integers(0, PAGE_SIZE - 1),
    ),
    st.tuples(
        st.just("digest"),
        st.integers(0, RAW_FRAMES - 1),
        st.just(0),
    ),
    st.tuples(st.just("drain"), st.just(0), st.just(0)),
)


def assert_cache_fresh(physmem: PhysicalMemory) -> None:
    """Every cached digest matches a fresh hash of the frame's content."""
    fingerprints = physmem.fingerprints
    for pfn in fingerprints.cached_frames():
        cached = fingerprints.peek(pfn)
        # peek_content: freed frames keep their (still-exact) cached
        # digests, and this check must not trip FrameSan's UAF detector.
        fresh = content_digest(physmem.peek_content(pfn))
        assert cached == fresh, (
            f"stale digest for pfn {pfn}: cached {cached:#x}, fresh {fresh:#x}"
        )


@pytest.mark.parametrize("frame_store", ["legacy", "columnar"])
@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=st.lists(raw_op, min_size=1, max_size=120))
def test_raw_operation_sequences(frame_store, ops):
    """Digest cache and dirty views stay exact under arbitrary ops."""
    physmem = PhysicalMemory(RAW_FRAMES, frame_store=frame_store)
    view = physmem.register_dirty_view("test")
    expected_dirty: set[int] = set()
    expected_generations = [0] * RAW_FRAMES

    for action, a, b in ops:
        if action == "write":
            physmem.write(a, tagged_content("raw", b))
            expected_dirty.add(a)
            expected_generations[a] += 1
        elif action == "copy":
            physmem.copy(a, b)
            expected_dirty.add(b)
            expected_generations[b] += 1
        elif action == "corrupt":
            version_before = physmem.version(a)
            physmem.corrupt_bit(a, b, b % 8)
            expected_dirty.add(a)
            expected_generations[a] += 1
            # Rowhammer must invalidate the digest but never the
            # charge-recharge version (one-way discharge model).
            assert physmem.version(a) == version_before
            peeked = physmem.fingerprints.peek(a)
            if frame_store == "legacy":
                # Per-frame cache: the flip must drop the entry.
                assert peeked is None
            else:
                # Arena cache: the flip moved the frame to the flipped
                # payload's content id; a digest is only present if that
                # exact payload was digested before — never stale.
                assert peeked is None or peeked == content_digest(
                    physmem.peek_content(a)
                )
        elif action == "digest":
            assert physmem.digest(a) == content_digest(physmem.read(a))
        else:  # drain
            assert view.drain() == frozenset(expected_dirty)
            expected_dirty.clear()

        assert_cache_fresh(physmem)
        assert view.peek() == frozenset(expected_dirty)
        for pfn in range(RAW_FRAMES):
            assert physmem.generation(pfn) == expected_generations[pfn]

    assert physmem.mutation_epoch == sum(expected_generations)
    # A second digest of every frame is a cache hit and still fresh.
    for pfn in range(RAW_FRAMES):
        first = physmem.digest(pfn)
        assert physmem.digest(pfn) == first == content_digest(physmem.read(pfn))


@pytest.mark.parametrize("frame_store", ["legacy", "columnar"])
@settings(max_examples=25, deadline=None)
@given(ops=st.lists(raw_op, min_size=1, max_size=60))
def test_disabled_cache_is_pure_recomputation(frame_store, ops):
    """With fingerprints disabled nothing is cached, digests stay right."""
    physmem = PhysicalMemory(
        RAW_FRAMES, fingerprint_enabled=False, frame_store=frame_store
    )
    for action, a, b in ops:
        if action == "write":
            physmem.write(a, tagged_content("raw", b))
        elif action == "copy":
            physmem.copy(a, b)
        elif action == "corrupt":
            physmem.corrupt_bit(a, b, b % 8)
        else:
            assert physmem.digest(a) == content_digest(physmem.read(a))
        assert not physmem.fingerprints.cached_frames()
    assert physmem.fingerprints.stats.digest_hits == 0


# ----------------------------------------------------------------------
# Layer 2: full kernels under every fusion engine
# ----------------------------------------------------------------------

ENGINES = {
    "ksm": lambda: Ksm(FusionConfig(pages_per_scan=64, scan_interval=20 * MS)),
    "coa-ksm": lambda: CopyOnAccessKsm(
        FusionConfig(pages_per_scan=64, scan_interval=20 * MS)
    ),
    "wpf": lambda: WindowsPageFusion(WpfConfig(pass_interval=100 * MS)),
    "vusion": lambda: Vusion(
        VusionConfig(random_pool_frames=128, min_idle_ns=50 * MS),
        FusionConfig(pages_per_scan=64, scan_interval=20 * MS),
    ),
    "memory-combining": lambda: MemoryCombining(
        FusionConfig(pages_per_scan=64, scan_interval=20 * MS),
        swap_after_ns=100 * MS,
    ),
}

NUM_PROCS = 2
PAGES_PER_PROC = 10

engine_op = st.tuples(
    st.sampled_from(["write", "write_dup", "read", "flip", "idle"]),
    st.integers(0, NUM_PROCS - 1),
    st.integers(0, PAGES_PER_PROC - 1),
    st.integers(0, 7),
)


def frame_of(process, vaddr: int) -> int | None:
    walk = process.address_space.page_table.walk(vaddr)
    if walk is None:
        return None
    return walk.frame_for(vaddr)


def check_dirty_exactness(physmem, view, contents_before, gens_before) -> None:
    """changed-content ⊆ drained dirty set == generation-advanced set."""
    drained = view.drain()
    changed = {
        pfn
        for pfn in range(physmem.num_frames)
        # peek_content: this sweep inspects *every* frame, including
        # legitimately freed ones, and must not trip FrameSan's UAF check.
        if physmem.peek_content(pfn) != contents_before[pfn]
    }
    advanced = {
        pfn
        for pfn in range(physmem.num_frames)
        if physmem.generation(pfn) != gens_before[pfn]
    }
    assert changed <= drained, f"stale dirty view: missed {changed - drained}"
    assert drained == advanced, (
        f"dirty view out of step with generations: {drained ^ advanced}"
    )


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(ops=st.lists(engine_op, min_size=1, max_size=40))
def test_engine_interleavings_keep_digests_fresh(engine_name, ops):
    """Under live fusion, every cached digest always matches the frame."""
    kernel = Kernel(small_spec(frames=1024))
    kernel.attach_fusion(ENGINES[engine_name]())
    physmem = kernel.physmem
    view = physmem.register_dirty_view("differential-test")
    processes = [kernel.create_process(f"p{i}") for i in range(NUM_PROCS)]
    vmas = [p.mmap(PAGES_PER_PROC, mergeable=True) for p in processes]
    # Duplicate-heavy seed so merges actually happen.
    for process, vma in zip(processes, vmas):
        for index in range(PAGES_PER_PROC):
            process.write(
                vma.start + index * PAGE_SIZE, tagged_content("seed", index % 4)
            )
    view.drain()

    for action, proc_index, page_index, salt in ops:
        process = processes[proc_index]
        vaddr = vmas[proc_index].start + page_index * PAGE_SIZE
        contents_before = physmem.contents_snapshot()
        gens_before = [physmem.generation(pfn) for pfn in range(physmem.num_frames)]
        if action == "write":
            process.write(vaddr, tagged_content("w", proc_index, page_index, salt))
        elif action == "write_dup":
            process.write(vaddr, tagged_content("dup", salt))
        elif action == "read":
            process.read(vaddr)
        elif action == "flip":
            pfn = frame_of(process, vaddr)
            if pfn is not None:
                physmem.corrupt_bit(pfn, salt * 17 % PAGE_SIZE, salt % 8)
        else:  # idle: scan daemons run, merging/unmerging/rerandomising
            kernel.idle(30 * MS * (salt + 1))

        assert_cache_fresh(physmem)
        check_dirty_exactness(physmem, view, contents_before, gens_before)

    # Settle all daemons, then one last full-freshness sweep including
    # an explicit digest of every mapped frame (forces cache fills).
    contents_before = physmem.contents_snapshot()
    gens_before = [physmem.generation(pfn) for pfn in range(physmem.num_frames)]
    kernel.idle(SECOND)
    assert_cache_fresh(physmem)
    check_dirty_exactness(physmem, view, contents_before, gens_before)
    for pfn in physmem.mapped_frames():
        assert physmem.digest(pfn) == content_digest(physmem.read(pfn))
    assert_cache_fresh(physmem)
