"""Oracle tests: fusion outcomes checked against a reference dedup.

Given an all-idle population of pages, a correct fusion engine must
converge to exactly one frame per distinct content (KSM/VUsion) — the
same answer a dictionary would give.  Property-tested over random
content multisets.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.vusion import Vusion
from repro.fusion.ksm import Ksm
from repro.kernel.kernel import Kernel
from repro.mem.content import tagged_content
from repro.params import FusionConfig, MS, PAGE_SIZE, SECOND, VusionConfig

from tests.conftest import small_spec

# A multiset of small content ids; repeats are merge opportunities.
content_ids = st.lists(
    st.integers(min_value=0, max_value=9), min_size=2, max_size=24
)


def deploy(engine_factory, ids):
    kernel = Kernel(small_spec(frames=4096))
    engine = engine_factory()
    kernel.attach_fusion(engine)
    # Spread the pages over two processes like co-hosted tenants.
    procs = [kernel.create_process("a"), kernel.create_process("b")]
    vmas = [p.mmap(max(1, len(ids)), mergeable=True) for p in procs]
    for index, content_id in enumerate(ids):
        proc = procs[index % 2]
        vma = vmas[index % 2]
        proc.write(
            vma.start + (index // 2) * PAGE_SIZE,
            tagged_content("oracle", content_id),
        )
    kernel.idle(4 * SECOND)
    return kernel, engine


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ids=content_ids)
def test_ksm_converges_to_distinct_contents(ids):
    kernel, ksm = deploy(lambda: Ksm(FusionConfig(64, 20 * MS)), ids)
    duplicates = len(ids) - len(set(ids))
    # Every duplicate page is eventually merged away: the saved-frame
    # count equals the reference dedup's answer.
    assert ksm.saved_frames() == duplicates


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ids=content_ids)
def test_vusion_converges_to_distinct_contents(ids):
    kernel, vusion = deploy(
        lambda: Vusion(
            VusionConfig(random_pool_frames=128, min_idle_ns=100 * MS),
            FusionConfig(64, 20 * MS),
        ),
        ids,
    )
    duplicates = len(ids) - len(set(ids))
    assert vusion.saved_frames() == duplicates
    # And the stable tree holds exactly one node per distinct content
    # (fake-merged singles included).
    shared, sharing = vusion.sharing_pairs()
    assert shared == len(set(ids))
    assert sharing == len(ids)


@pytest.mark.parametrize("duplicate_count", [2, 3, 5, 8])
def test_ksm_nway_sharing_refcounts(duplicate_count):
    """N-way merges keep exactly one frame with N mappers + 1 pin."""
    kernel = Kernel(small_spec(frames=4096))
    ksm = Ksm(FusionConfig(64, 20 * MS))
    kernel.attach_fusion(ksm)
    procs = [kernel.create_process(f"p{i}") for i in range(duplicate_count)]
    for proc in procs:
        vma = proc.mmap(1, mergeable=True)
        proc.write(vma.start, tagged_content("nway"))
    kernel.idle(3 * SECOND)
    shared, sharing = ksm.sharing_pairs()
    assert (shared, sharing) == (1, duplicate_count)
    node_pfn = next(iter(ksm._nodes_by_pfn))
    assert kernel.physmem.refcount(node_pfn) == duplicate_count + 1
