"""Regression tests for the O(1) accounting counters.

``frames_in_use`` / ``type_histogram`` / buddy ``free_frames`` used to
be full recounts over every frame; they are now incrementally
maintained counters.  These tests drive randomized alloc/free/retype
traffic and assert counter == recount at every step, plus the cached
``mapped_frames`` view against a model of the rmap key set.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.kernel.kernel import Kernel
from repro.mem.buddy import BuddyAllocator
from repro.mem.content import tagged_content
from repro.mem.physmem import FrameType, PhysicalMemory
from repro.params import PAGE_SIZE, SECOND

from tests.conftest import small_spec

FRAMES = 64
TYPES = list(FrameType)


def recount(physmem: PhysicalMemory) -> tuple[int, dict[FrameType, int]]:
    """The slow ground truth the counters replaced."""
    histogram = {frame_type: 0 for frame_type in FrameType}
    for pfn in range(physmem.num_frames):
        histogram[physmem.frame_type(pfn)] += 1
    in_use = physmem.num_frames - histogram[FrameType.FREE]
    return in_use, histogram


type_op = st.tuples(
    st.integers(0, FRAMES - 1),
    st.sampled_from(TYPES),
)


@pytest.mark.parametrize("frame_store", ["legacy", "columnar"])
@given(ops=st.lists(type_op, min_size=1, max_size=300))
def test_counters_match_recount_under_random_retype(frame_store, ops):
    """frames_in_use/type_histogram equal a full recount at every step
    (the columnar accessors are counter-backed; the legacy ones keep the
    historical recount — both must agree with the ground truth)."""
    physmem = PhysicalMemory(FRAMES, frame_store=frame_store)
    for pfn, frame_type in ops:
        physmem.set_frame_type(pfn, frame_type)
        in_use, histogram = recount(physmem)
        assert physmem.frames_in_use() == in_use
        assert physmem.type_histogram() == histogram

    # The histogram preserves FrameType declaration order (Table 3
    # rendering depends on it).
    assert list(physmem.type_histogram()) == TYPES


rmap_op = st.tuples(
    st.sampled_from(["add", "remove"]),
    st.integers(0, FRAMES - 1),
    st.integers(1, 3),        # pid
    st.integers(0, 3),        # page index
)


@given(ops=st.lists(rmap_op, min_size=1, max_size=300))
def test_mapped_frames_cache_tracks_rmap_key_set(ops):
    """The sorted mapped-pfn view stays exact under random rmap churn,
    and is only rebuilt when a pfn gains its first / loses its last
    mapping."""
    physmem = PhysicalMemory(FRAMES)
    model: dict[int, set[tuple[int, int]]] = {}
    for action, pfn, pid, index in ops:
        vaddr = index * PAGE_SIZE
        entries = model.setdefault(pfn, set())
        key_set_before = set(model_keys(model))
        cached_before = physmem._mapped_cache
        if action == "add":
            if (pid, vaddr) in entries:
                continue  # rmap_add of a duplicate entry is a no-op set add
            physmem.rmap_add(pfn, pid, vaddr)
            entries.add((pid, vaddr))
        else:
            if (pid, vaddr) not in entries:
                continue  # removing a missing entry raises; not under test
            physmem.rmap_remove(pfn, pid, vaddr)
            entries.remove((pid, vaddr))

        assert list(physmem.mapped_frames()) == sorted(model_keys(model))
        assert physmem.rmap(pfn) == frozenset(model.get(pfn) or ())
        if set(model_keys(model)) == key_set_before and cached_before is not None:
            # Key set unchanged: the cached tuple must have survived.
            assert physmem._mapped_cache is cached_before


def model_keys(model: dict[int, set]) -> list[int]:
    return [pfn for pfn, entries in model.items() if entries]


buddy_op = st.tuples(
    st.sampled_from(["alloc", "free"]),
    st.integers(0, 3),  # order
)


@given(ops=st.lists(buddy_op, min_size=1, max_size=200))
def test_buddy_free_frames_counter_matches_outstanding(ops):
    """free_frames() == total - outstanding allocation mass, always."""
    total = 256
    buddy = BuddyAllocator(0, total)
    outstanding: list[tuple[int, int]] = []  # (pfn, order)
    for action, order in ops:
        if action == "alloc":
            try:
                pfn = buddy.alloc(order)
            except Exception:
                continue  # out of memory at this order: fine
            outstanding.append((pfn, order))
        elif outstanding:
            pfn, order = outstanding.pop()
            buddy.free(pfn, order)
        allocated = sum(1 << order for _pfn, order in outstanding)
        assert buddy.free_frames() == total - allocated


def test_kernel_traffic_keeps_counters_exact():
    """End-to-end: processes mapping/unmapping under a live kernel leave
    the counters equal to a recount (and to the buddy's view)."""
    kernel = Kernel(small_spec(frames=2048))
    physmem = kernel.physmem
    processes = [kernel.create_process(f"p{i}") for i in range(3)]
    vmas = [p.mmap(32, mergeable=True) for p in processes]
    for process, vma in zip(processes, vmas):
        for index in range(32):
            process.write(
                vma.start + index * PAGE_SIZE,
                tagged_content("acct", index % 5),
            )
    kernel.idle(SECOND)
    kernel.munmap(processes[0], vmas[0])
    kernel.idle(SECOND)

    in_use, histogram = recount(physmem)
    assert physmem.frames_in_use() == in_use
    assert physmem.type_histogram() == histogram
    assert kernel.frames_in_use() == in_use
    # Every mapped frame is accounted as in use, none as FREE.
    mapped = list(physmem.mapped_frames())
    assert mapped == sorted(mapped)
    types = Counter(physmem.frame_type(pfn) for pfn in mapped)
    assert types[FrameType.FREE] == 0
