"""Tests for the guest file store and daemon/clock plumbing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.kernel.clock import Clock
from repro.kernel.daemons import Daemon, DaemonScheduler
from repro.kernel.page_cache import GuestFileStore


class TestGuestFileStore:
    def test_register_and_read(self):
        store = GuestFileStore()
        store.register_file("etc/passwd", 4)
        assert store.has_file("etc/passwd")
        assert store.file_pages("etc/passwd") == 4
        content = store.page_content("etc/passwd", 0)
        assert content and content == store.page_content("etc/passwd", 0)

    def test_cross_store_determinism(self):
        """Two VMs registering the same file cache identical bytes."""
        a, b = GuestFileStore(), GuestFileStore()
        a.register_file("lib/libc", 8)
        b.register_file("lib/libc", 8)
        for index in range(8):
            assert a.page_content("lib/libc", index) == b.page_content("lib/libc", index)

    def test_generation_changes_content(self):
        store = GuestFileStore()
        store.register_file("mail", 2)
        before = store.page_content("mail", 1)
        assert store.rewrite_file("mail") == 1
        assert store.page_content("mail", 1) != before

    def test_remove(self):
        store = GuestFileStore()
        store.register_file("tmp", 1)
        store.remove_file("tmp")
        assert not store.has_file("tmp")

    def test_bad_page_index(self):
        store = GuestFileStore()
        store.register_file("f", 2)
        with pytest.raises(ConfigError):
            store.page_content("f", 2)

    def test_zero_pages_rejected(self):
        store = GuestFileStore()
        with pytest.raises(ConfigError):
            store.register_file("empty", 0)


class TestClock:
    def test_advance(self):
        clock = Clock()
        assert clock.advance(10) == 10
        assert clock.now == 10

    def test_negative_rejected(self):
        clock = Clock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_advance_to_never_backwards(self):
        clock = Clock(100)
        clock.advance_to(50)
        assert clock.now == 100
        clock.advance_to(200)
        assert clock.now == 200


class TestDaemonScheduler:
    def test_period_validation(self):
        with pytest.raises(ValueError):
            Daemon("bad", 0, lambda: None)

    def test_run_due_respects_deadline(self):
        scheduler = DaemonScheduler()
        runs = []
        scheduler.register(Daemon("d", 100, lambda: runs.append(1)), now=0)
        assert not scheduler.run_due(50)
        assert scheduler.run_due(100)
        assert runs == [1]

    def test_no_drift(self):
        """Deadlines step by the period from the scheduled time."""
        scheduler = DaemonScheduler()
        daemon = scheduler.register(Daemon("d", 100, lambda: None), now=0)
        scheduler.run_due(130)  # ran late
        assert daemon.next_due == 230  # 130 + 100 (no earlier than now)

    def test_disabled_daemon_skipped(self):
        scheduler = DaemonScheduler()
        runs = []
        daemon = scheduler.register(Daemon("d", 10, lambda: runs.append(1)), now=0)
        daemon.enabled = False
        scheduler.run_due(1000)
        assert not runs
        assert scheduler.next_deadline() is None

    def test_unregister(self):
        scheduler = DaemonScheduler()
        daemon = scheduler.register(Daemon("d", 10, lambda: None), now=0)
        scheduler.unregister(daemon)
        assert scheduler.daemons == ()
