"""Tests for the Memory Combining engine (swap-cache-only fusion)."""

from __future__ import annotations

import pytest

from repro.fusion.ksm import Ksm
from repro.fusion.memory_combining import CompressedStore, MemoryCombining
from repro.kernel.kernel import Kernel
from repro.params import MS, SECOND

from tests.conftest import dup, fast_fusion, small_spec


def make_setup(frames=8192, swap_after=200 * MS):
    kernel = Kernel(small_spec(frames=frames))
    engine = MemoryCombining(fast_fusion(), swap_after_ns=swap_after)
    kernel.attach_fusion(engine)
    return kernel, engine


def pair_setup(kernel, count=8, tag="mc"):
    a = kernel.create_process("a")
    b = kernel.create_process("b")
    va = a.mmap(count, mergeable=True)
    vb = b.mmap(count, mergeable=True)
    for index in range(count):
        a.write_page(va, index, dup(tag, index))
        b.write_page(vb, index, dup(tag, index))
    return a, b, va, vb


class TestCompressedStore:
    def test_insert_and_combine(self):
        store = CompressedStore()
        assert not store.insert(b"page-a" * 100)
        assert store.insert(b"page-a" * 100)  # duplicate combines
        assert len(store) == 1
        assert store.references(b"page-a" * 100) == 2

    def test_fetch_restores_and_releases(self):
        store = CompressedStore()
        content = b"hello world" * 50
        store.insert(content)
        store.insert(content)
        assert store.fetch(content) == content
        assert len(store) == 1
        store.fetch(content)
        assert len(store) == 0
        assert store.compressed_bytes == 0

    def test_compression_actually_shrinks(self):
        store = CompressedStore()
        content = b"\xab" * 4096
        store.insert(content)
        assert store.compressed_bytes < len(content) // 4


class TestEviction:
    def test_idle_pages_swapped_out(self):
        kernel, engine = make_setup()
        a, b, va, vb = pair_setup(kernel)
        kernel.idle(3 * SECOND)
        assert engine.swap_outs >= 16
        assert engine.evicted_pages() >= 16
        # Duplicates combined in the store: 8 distinct contents.
        shared, sharing = engine.sharing_pairs()
        assert shared == 8
        assert sharing == 16
        assert engine.saved_frames() == 8

    def test_hot_pages_stay_resident(self):
        kernel, engine = make_setup()
        a = kernel.create_process("a")
        vma = a.mmap(1, mergeable=True)
        a.write_page(vma, 0, dup("hot"))
        for _ in range(100):
            a.read_page(vma, 0)
            kernel.idle(30 * MS)
        assert engine.evicted_pages() == 0

    def test_swap_in_restores_content(self):
        kernel, engine = make_setup()
        a, b, va, vb = pair_setup(kernel, count=4)
        kernel.idle(3 * SECOND)
        assert engine.evicted_pages() > 0
        for index in range(4):
            assert a.read_page(va, index) == dup("mc", index)
        assert engine.swap_ins >= 1

    def test_swap_in_is_private(self):
        kernel, engine = make_setup()
        a, b, va, vb = pair_setup(kernel, count=1)
        kernel.idle(3 * SECOND)
        a.write_page(va, 0, b"a-private")
        assert b.read_page(vb, 0) == dup("mc", 0)

    def test_swap_fault_is_expensive(self):
        """The security-by-absence comes at swap-fault cost."""
        kernel, engine = make_setup()
        a, b, va, vb = pair_setup(kernel, count=2)
        kernel.idle(3 * SECOND)
        cold = a.read(va.start)
        warm = a.read(va.start)
        assert "demand" in cold.fault_kinds
        assert cold.latency > 3 * warm.latency


class TestSecurityByAbsence:
    def test_cow_timing_attack_defeated(self):
        """Evicted pages all fault alike on access, so the classic
        timing probe cannot tell merged from unmerged — Memory
        Combining is safe the same way disabling fusion is."""
        from repro.attacks import AttackEnvironment, CowTimingAttack

        result = CowTimingAttack(
            AttackEnvironment("memory-combining")
        ).run()
        assert not result.success

    def test_covert_channel_defeated(self):
        from repro.attacks import AttackEnvironment, DedupCovertChannel

        result = DedupCovertChannel(
            AttackEnvironment("memory-combining")
        ).run()
        assert not result.success


class TestFusionRateComparison:
    def test_misses_fusion_opportunities_vs_ksm(self):
        """The paper's §10.1 claim: memory combining saves less than
        active fusion, because only swap-eligible pages participate."""

        def savings(engine_factory):
            kernel = Kernel(small_spec(frames=16384))
            engine = engine_factory()
            kernel.attach_fusion(engine)
            a = kernel.create_process("a")
            b = kernel.create_process("b")
            va = a.mmap(64, mergeable=True)
            vb = b.mmap(64, mergeable=True)
            hot = list(range(0, 16))
            for index in range(64):
                a.write_page(va, index, dup("cmp", index))
                b.write_page(vb, index, dup("cmp", index))
            # A quarter of the duplicates stay in the working set.
            for _ in range(60):
                for index in hot:
                    a.read_page(va, index)
                    b.read_page(vb, index)
                kernel.idle(50 * MS)
            return engine.saved_frames()

        ksm_saved = savings(lambda: Ksm(fast_fusion()))
        combining_saved = savings(
            lambda: MemoryCombining(fast_fusion(), swap_after_ns=200 * MS)
        )
        # KSM merges hot duplicates too (reads don't unmerge); memory
        # combining can never touch the working set.
        assert ksm_saved == 64
        assert combining_saved <= 48
        assert combining_saved > 0
