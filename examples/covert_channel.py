#!/usr/bin/env python3
"""A cross-VM covert channel over page fusion (paper §10.1).

Two co-hosted VMs that cannot talk to each other exchange a message
through the deduplication side channel: the sender writes agreed-upon
codeword pages for 1-bits, the receiver later times writes to its own
copies — slow copy-on-write means "merged", hence "1".

Under VUsion the receiver's probes are indistinguishable copy-on-access
faults and the channel collapses to coin flips.

Run:  python examples/covert_channel.py
"""

from repro.attacks.base import AttackEnvironment
from repro.attacks.covert_channel import DedupCovertChannel


def show(engine_name: str) -> None:
    env = AttackEnvironment(engine_name)
    result = DedupCovertChannel(env, message_bits=16).run()
    sent = "".join(map(str, result.evidence["message"]))
    got = "".join(map(str, result.evidence["decoded"]))
    print(f"=== covert channel over {engine_name.upper()} ===")
    print(f"  sent:    {sent}")
    print(f"  decoded: {got}")
    print(f"  correct: {result.evidence['correct_bits']}/"
          f"{result.evidence['total_bits']}"
          f"  ({result.evidence['decode_bits_per_s']:.0f} bit/s decode rate)")
    print(f"  -> {'CHANNEL WORKS' if result.success else 'channel destroyed'}\n")


def main() -> None:
    show("ksm")
    show("vusion")


if __name__ == "__main__":
    main()
