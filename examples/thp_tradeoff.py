#!/usr/bin/env python3
"""The huge-page / fusion-capacity trade-off and the adaptive policy (§8.1).

VUsion's THP mode keeps a huge page whole when at least ``n`` of its
512 base pages are active: ``n = 1`` favours performance, large ``n``
favours fusion.  This example measures both ends of the dial on a
partially-hot working set, then lets the SmartMD-style adaptive policy
steer ``n`` from TLB-miss and memory-pressure feedback.

Run:  python examples/thp_tradeoff.py
"""

from repro.analysis.metrics import count_huge_pages
from repro.harness.scenario import Scenario, VUSION_THP_CONFIG
from repro.kernel.adaptive_thp import AdaptiveThpConfig, AdaptiveThpPolicy
from repro.params import MS, PAGE_SIZE, SECOND
from repro.workloads.vm_image import DISTRO_IMAGES


def run(threshold: int, adaptive: bool = False) -> None:
    config = VUSION_THP_CONFIG.with_(
        min_idle_ns=150 * MS,
        khugepaged_period=250 * MS,
        thp_active_threshold=threshold,
    )
    scenario = Scenario(config, frames=32768)
    vms = [scenario.boot(DISTRO_IMAGES["debian"]) for _ in range(2)]
    policy = None
    if adaptive:
        policy = AdaptiveThpPolicy(
            scenario.kernel,
            scenario.khugepaged,
            AdaptiveThpConfig(period=SECOND, high_miss_rate=0.05, step=32),
        )
    # A partially-hot range: 96 of 512 page-cache pages stay active —
    # more than the TLB covers as 4 KiB pages, fewer than a large n.
    vm = vms[0]
    cache = vm.region("page_cache")
    for _ in range(60):
        for index in range(96):
            vm.process.read(cache.start + (index * 5 % 512) * PAGE_SIZE)
        scenario.idle(200 * MS)
    label = "adaptive" if adaptive else f"n={threshold}"
    extra = ""
    if policy is not None:
        extra = f"  (threshold now {scenario.khugepaged.active_threshold}," \
                f" {len(policy.adjustments)} adjustments)"
    print(
        f"{label:10s} huge pages: {count_huge_pages(scenario.kernel):2d}"
        f"  frames saved: {scenario.saved_frames():5d}{extra}"
    )


def main() -> None:
    print("partially-hot THP range under VUsion THP mode:\n")
    run(threshold=1)     # performance end: conserve on any activity
    run(threshold=256)   # capacity end: 96 active < 256 -> break & fuse
    run(threshold=256, adaptive=True)  # TLB pressure steers n back down


if __name__ == "__main__":
    main()
