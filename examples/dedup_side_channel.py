#!/usr/bin/env python3
"""The deduplication side channel, end to end (paper §4.1, Figs. 5/6).

An attacker guesses a secret page held by a co-hosted victim, waits for
page fusion, and times writes to her guesses.  Under KSM the correct
guess takes a slow copy-on-write fault — the secret leaks.  Under
VUsion every candidate page takes the same copy-on-access fault, so
timing reveals nothing.

Run:  python examples/dedup_side_channel.py
"""

from repro.attacks import AttackEnvironment, CowTimingAttack
from repro.analysis.stats import distribution_summary


def show(engine_name: str) -> None:
    print(f"=== attacking {engine_name.upper()} ===")
    env = AttackEnvironment(engine_name)
    result = CowTimingAttack(env, samples=16).run()
    correct = result.evidence["correct_times"]
    wrong = result.evidence["wrong_times"]
    print(f"  write latency, correct guesses: "
          f"median {distribution_summary(correct).median:.0f} ns")
    print(f"  write latency, wrong guesses:   "
          f"median {distribution_summary(wrong).median:.0f} ns")
    print(f"  slow writes: {result.evidence['slow_correct']} correct vs "
          f"{result.evidence['slow_wrong']} wrong")
    verdict = "SECRET LEAKED" if result.success else "attack defeated"
    print(f"  -> {verdict}\n")


def main() -> None:
    show("ksm")      # the insecure Linux baseline: bimodal timings
    show("vusion")   # Same Behaviour: identical timings, nothing leaks


if __name__ == "__main__":
    main()
