#!/usr/bin/env python3
"""Flip Feng Shui against page fusion, end to end (paper §4.2/§5.2).

The attacker templates her own memory for Rowhammer bit flips, writes
the victim's known sensitive content (think: an RSA public key) onto a
vulnerable page, and lets the fusion system merge it.  Under KSM the
merged copy lives in *her* templated frame: hammering her neighbouring
pages corrupts the victim's key without a single write.  Under VUsion
the merged copy lives on a frame drawn from a 15-bit-entropy pool, and
the hammer hits nothing of value.

The reuse-based variant defeats even Windows Page Fusion's new-frame
allocation by exploiting its deterministic end-of-memory reuse.

Run:  python examples/flip_feng_shui_demo.py
"""

from repro.attacks import (
    AttackEnvironment,
    FlipFengShuiAttack,
    ReuseFlipFengShuiAttack,
)


def classic(engine_name: str) -> None:
    env = AttackEnvironment(
        engine_name, thp_fault=True, frames=32768, row_vulnerability=0.3
    )
    result = FlipFengShuiAttack(env).run()
    print(f"classic Flip Feng Shui vs {engine_name.upper()}:")
    print(f"  templated flips found: {result.evidence.get('flips_found', 0)}")
    print(f"  victim page merged:    {result.evidence.get('merged')}")
    print(f"  victim data corrupted: {result.evidence.get('corrupted', False)}")
    print(f"  -> {'ATTACK SUCCEEDED' if result.success else 'attack defeated'}\n")


def reuse_based(engine_name: str) -> None:
    env = AttackEnvironment(engine_name, frames=16384, row_vulnerability=0.3)
    result = ReuseFlipFengShuiAttack(env).run()
    print(f"reuse-based Flip Feng Shui vs {engine_name.upper()}:")
    if "error" in result.evidence:
        print(f"  {result.evidence['error']}")
    else:
        print(f"  flips in fused region: {result.evidence['flips_found']}")
        print(f"  victim data corrupted: {result.evidence['corrupted']}")
    print(f"  -> {'ATTACK SUCCEEDED' if result.success else 'attack defeated'}\n")


def main() -> None:
    classic("ksm")        # merge reuses the attacker's frame: corruption
    classic("vusion")     # randomized allocation: the flip goes nowhere
    reuse_based("wpf")    # predictable reuse: corruption despite new frames
    reuse_based("vusion")


if __name__ == "__main__":
    main()
