#!/usr/bin/env python3
"""Quickstart: secure page fusion with VUsion in ten minutes.

Builds a simulated machine, attaches the VUsion engine, boots two
processes holding duplicate pages, and shows the full life cycle:
scanning, (fake) merging, copy-on-access, and the memory saved —
all while the pages' contents stay correct.

Run:  python examples/quickstart.py
"""

from repro import Kernel, MachineSpec, Vusion
from repro.mem.content import tagged_content
from repro.params import FusionConfig, MS, PAGE_SIZE, SECOND, VusionConfig


def main() -> None:
    # A small machine: 16384 frames of 4 KiB (64 MiB), paper-faithful
    # LLC/TLB/DRAM geometry.
    kernel = Kernel(MachineSpec(total_frames=16384))
    vusion = kernel.attach_fusion(
        Vusion(
            VusionConfig(random_pool_frames=1024, min_idle_ns=100 * MS),
            FusionConfig(pages_per_scan=256, scan_interval=20 * MS),
        )
    )

    # Two tenants that happen to hold identical data (say, the same
    # shared library) plus some private data.
    alice = kernel.create_process("alice")
    bob = kernel.create_process("bob")
    alice_mem = alice.mmap(8, mergeable=True)   # madvise(MADV_MERGEABLE)
    bob_mem = bob.mmap(8, mergeable=True)
    for index in range(8):
        shared = tagged_content("libc.so", index)
        alice.write(alice_mem.start + index * PAGE_SIZE, shared)
        bob.write(bob_mem.start + index * PAGE_SIZE, shared)
    private = alice.mmap(4, mergeable=True)
    for index in range(4):
        alice.write(private.start + index * PAGE_SIZE, tagged_content("secret", index))

    print(f"before fusion: {kernel.frames_in_use()} frames in use")

    # Let the machine sit idle; the VUsion daemon scans in the
    # background and fuses everything that stays cold.
    kernel.idle(2 * SECOND)
    vusion.deferred.drain()  # flush in-flight deferred frees for a clean count
    shared_nodes, sharing_ptes = vusion.sharing_pairs()
    print(f"after  fusion: {kernel.frames_in_use()} frames in use")
    print(f"  stable nodes: {shared_nodes}  (includes fake-merged singles)")
    print(f"  fused PTEs:   {sharing_ptes}")
    print(f"  frames saved: {vusion.saved_frames()}")
    print(f"  real merges:  {vusion.stats.merges},"
          f" fake merges: {vusion.stats.fake_merges}")

    # Every page — merged or fake-merged — is now inaccessible; the
    # first access takes an identical copy-on-access fault.
    merged_read = alice.read(alice_mem.start)
    fake_read = alice.read(private.start)
    print("\ncopy-on-access (Same Behaviour):")
    print(f"  read of merged page:      {merged_read.latency} ns"
          f" fault={merged_read.fault_kinds}")
    print(f"  read of fake-merged page: {fake_read.latency} ns"
          f" fault={fake_read.fault_kinds}")

    # Contents are always preserved; writes never reach the other party.
    alice.write(alice_mem.start, b"alice's new data")
    assert bob.read(bob_mem.start).content == tagged_content("libc.so", 0)
    print("\nwrite isolated: bob still sees the original shared content")
    print(f"copy-on-access unmerges so far: {vusion.stats.coa_unmerges}")


if __name__ == "__main__":
    main()
