#!/usr/bin/env python3
"""Cloud memory consolidation across the four systems (paper Figs. 10/12).

Boots four VMs from the same image under each configuration and tracks
machine-wide memory consumption while fusion converges, then starts an
Apache-style benchmark in one VM and watches memory grow with the
worker pool.

Run:  python examples/cloud_consolidation.py
"""

from repro.analysis.report import format_series
from repro.harness.scenario import Scenario, STANDARD_CONFIGS
from repro.params import MS, SECOND
from repro.workloads.apache import ApacheWorkload
from repro.workloads.vm_image import DISTRO_IMAGES


def main() -> None:
    image = DISTRO_IMAGES["debian"]
    series = {}
    for config in STANDARD_CONFIGS:
        config = config.with_(min_idle_ns=150 * MS, khugepaged_period=250 * MS)
        scenario = Scenario(config, frames=32768)
        vms = [scenario.boot(image) for _ in range(4)]
        scenario.run_sampling(6 * SECOND, SECOND)

        workload = ApacheWorkload(vms[0])
        for _ in range(4):
            workload.run(800)
            scenario.idle(SECOND)
            scenario.sample()

        saved = scenario.saved_frames()
        print(f"{config.label:12s} final frames in use: "
              f"{scenario.samples[-1].frames_in_use:6d}  saved: {saved:6d}")
        series[config.label] = scenario.series("frames_in_use")

    print()
    print(format_series(series, title="memory consumption over time",
                        value_label="frames in use"))


if __name__ == "__main__":
    main()
